"""Text dashboard for a federated monitor snapshot.

``python -m repro dashboard`` (or any caller with a snapshot dict)
renders per-service gauges, the firing alerts, the tail-latency panel
and the SLO scoreboard as plain terminal text.  Accepts either a
monitor-service snapshot (``rave-monitor-snapshot/1``) directly, or an
observability snapshot that embeds one under a ``monitor`` key (what
the benchmark writes).

Multi-monitor federation: :func:`merge_monitor_snapshots` folds several
monitors' snapshots into one view, keyed on each input's ``wall_meta``
source slot (observability snapshots carry one; bare monitor snapshots
get an index-derived slot) with per-series ``service``/``host`` labels
keeping the merged metrics unambiguous.  :func:`diff_snapshots` +
:func:`render_diff` turn two snapshots into a triage report: quantile
deltas above a threshold, alerts that appeared or cleared.
"""

from __future__ import annotations

_BAR_WIDTH = 24

#: ASCII luminance ramp for the tail-latency sparklines
_SPARK_RAMP = " .:-=+*#%@"

#: flattened-key suffixes the diff treats as latency quantiles
QUANTILE_SUFFIXES = ("_p50", "_p95", "_p99")

#: default regression threshold (seconds of quantile movement)
DIFF_THRESHOLD_SECONDS = 0.1


def _bar(value: float, full_scale: float, width: int = _BAR_WIDTH) -> str:
    if full_scale <= 0:
        return " " * width
    filled = min(width, max(0, round(width * value / full_scale)))
    return "#" * filled + "." * (width - filled)


def _fmt(value: float) -> str:
    return f"{value:.2f}" if isinstance(value, float) else str(value)


def _service_rows(services: dict) -> list[str]:
    rows = [f"  {'service':<18} {'host':<12} {'kind':<9} "
            f"{'fps':>7}  {'utilisation':<{_BAR_WIDTH + 7}} {'events':>6}"]
    for name in sorted(services):
        entry = services[name]
        metrics = entry.get("metrics", {})
        fps = metrics.get("rave_rs_fps")
        util = metrics.get("rave_rs_utilisation")
        fps_text = f"{fps:7.2f}" if fps is not None else f"{'-':>7}"
        if util is not None:
            util_text = f"{util:5.2f} {_bar(util, 1.5)}"
        else:
            util_text = f"{'-':>5} {' ' * _BAR_WIDTH}"
        rows.append(f"  {name:<18} {entry.get('host', '?'):<12} "
                    f"{entry.get('kind', '?'):<9} {fps_text}  "
                    f"{util_text:<{_BAR_WIDTH + 7}} "
                    f"{entry.get('events_seen', 0):>6}")
    return rows


def _alert_rows(alerts: list) -> list[str]:
    if not alerts:
        return ["  (none firing)"]
    rows = []
    for alert in alerts:
        rows.append(
            f"  [{alert.get('severity', '?'):<8}] {alert.get('rule', '?')} "
            f"on {alert.get('service', '?')}: value={_fmt(alert.get('value'))} "
            f"since t={_fmt(alert.get('since'))}s")
    return rows


def _slo_rows(slo: dict) -> list[str]:
    if not slo:
        return ["  (no SLO observations yet)"]
    rows = []
    for name in sorted(slo):
        section = slo[name]
        op = ">=" if section.get("op") == "ge" else "<="
        rows.append(f"  {name} ({section.get('metric')} {op} "
                    f"{section.get('objective')}) — {section.get('source')}")
        for service, score in sorted(section.get("services", {}).items()):
            attainment = score.get("attainment", 0.0)
            open_windows = [w for w in score.get("violations", [])
                            if not w.get("recovered")]
            status = "VIOLATING" if open_windows else (
                "ok" if attainment >= 1.0 else "recovered")
            rows.append(
                f"    {service:<18} {attainment:7.1%} "
                f"({score.get('good')}/{score.get('total')} scrapes, "
                f"{len(score.get('violations', []))} violation "
                f"window(s)) {status}")
    return rows


def _pool_rows(autoscale: dict) -> list[str]:
    history = autoscale.get("pool", [])
    trajectory = " -> ".join(
        f"{entry.get('size', '?')}@t={_fmt(entry.get('time', 0.0))}s"
        for entry in history) or "(no history)"
    limit = autoscale.get("max_services")
    rows = [
        f"  size: {autoscale.get('pool_size', '?')} "
        f"(min {autoscale.get('min_services', '?')}, "
        f"max {limit if limit is not None else 'unbounded'}, "
        f"cooldown {_fmt(autoscale.get('cooldown_seconds', 0.0))}s, "
        f"{autoscale.get('migrations', 0)} migration(s) driven)",
        f"  history: {trajectory}",
    ]
    events = autoscale.get("events", [])
    if not events:
        rows.append("  (no scale events)")
    for event in events:
        rows.append(
            f"  t={_fmt(event.get('time'))}s {event.get('kind', '?'):<8} "
            f"{', '.join(event.get('services', []))} "
            f"(pool {event.get('pool_before', '?')} -> "
            f"{event.get('pool_after', '?')}; {event.get('reason', '?')})")
    return rows


def _admission_rows(grid_entry: dict, federated: dict) -> list[str]:
    """The admission plane of a scraped SessionGridManager payload."""
    metrics = grid_entry.get("metrics", {})
    depth = metrics.get("rave_queue_depth", 0.0)
    rate = metrics.get("rave_admission_rejection_rate", 0.0)
    sessions = metrics.get("rave_admission_sessions", 0.0)
    util = metrics.get("rave_admission_pool_utilisation", 0.0)
    rows = [
        f"  sessions: {sessions:.0f}   queue depth: {depth:.0f}   "
        f"rejection rate: {rate:.2f}/s   "
        f"pool utilisation: {util:5.2f} {_bar(util, 1.0)}",
    ]
    tenants = federated.get("rave_tenant_sessions", {}).get("series", [])
    for entry in sorted(tenants,
                        key=lambda e: e.get("labels", {}).get("tenant", "")):
        tenant = entry.get("labels", {}).get("tenant", "?")
        rows.append(f"    tenant {tenant:<16} "
                    f"{entry.get('value', 0.0):.0f} session(s)")
    return rows


def _farm_rows(farm_entry: dict, federated: dict) -> list[str]:
    """The frame-queue plane of a scraped FrameQueueService payload."""
    metrics = farm_entry.get("metrics", {})
    depth = metrics.get("rave_farm_queue_depth", 0.0)
    leases = metrics.get("rave_farm_active_leases", 0.0)
    fps = metrics.get("rave_farm_frames_per_second", 0.0)
    done = metrics.get("rave_farm_frames_total", 0.0)
    requeues = metrics.get("rave_farm_requeues_total", 0.0)
    starved = metrics.get("rave_farm_starved_jobs", 0.0)
    invalid = metrics.get("rave_farm_invalid_results_total", 0.0)
    rows = [
        f"  queue depth: {depth:.0f}   active leases: {leases:.0f}   "
        f"throughput: {fps:.2f} frames/s   "
        f"completed: {done:.0f}   re-queued: {requeues:.0f}",
        f"  starved jobs: {starved:.0f}   "
        f"invalid results dropped: {invalid:.0f}",
    ]
    # the fairness panel: per-job priority/tenant from the scheduler's
    # gauges, mean pending-to-lease wait from the wait histogram
    fairness = {}
    for entry in federated.get("rave_farm_job_priority",
                               {}).get("series", []):
        labels = entry.get("labels", {})
        job = labels.get("job", "?")
        fairness[job] = {"priority": entry.get("value", 0.0),
                         "tenant": labels.get("tenant", "-")}
    for entry in federated.get("rave_farm_job_wait_seconds",
                               {}).get("series", []):
        job = entry.get("labels", {}).get("job", "?")
        count = entry.get("count", 0)
        if job in fairness and count:
            fairness[job]["wait"] = entry.get("sum", 0.0) / count
    jobs = federated.get("rave_farm_job_progress", {}).get("series", [])
    for entry in sorted(jobs,
                        key=lambda e: e.get("labels", {}).get("job", "")):
        job = entry.get("labels", {}).get("job", "?")
        progress = entry.get("value", 0.0)
        fair = fairness.get(job, {})
        detail = (f" prio {fair['priority']:.0f}"
                  f" tenant {fair.get('tenant', '-')}"
                  + (f" wait {fair['wait']:.2f}s" if "wait" in fair else "")
                  if fair else "")
        rows.append(f"    job {job:<20} {progress:7.1%} "
                    f"{_bar(progress, 1.0)}{detail}")
    return rows


def _sparkline(values: list, width: int = _BAR_WIDTH) -> str:
    """Map a value history onto the ASCII ramp, newest sample last."""
    if not values:
        return " " * width
    tail = values[-width:]
    top = max(tail)
    if top <= 0:
        return ("." * len(tail)).rjust(width)
    ramp = _SPARK_RAMP
    chars = [ramp[min(len(ramp) - 1,
                      int(v / top * (len(ramp) - 1) + 0.5))]
             for v in tail]
    return "".join(chars).rjust(width)


def _tail_rows(tail: dict) -> list[str]:
    """The tail-latency panel: one p95 sparkline per service metric."""
    rows = []
    for service in sorted(tail):
        for metric, history in sorted(tail[service].items()):
            values = [point[1] for point in history]
            latest = values[-1] if values else 0.0
            rows.append(f"  {service:<18} {metric:<34} "
                        f"[{_sparkline(values)}] p95 now "
                        f"{latest:.3f}s ({len(values)} sample(s))")
    if not rows:
        return ["  (no tail-latency history yet)"]
    return rows


def _coerce_monitor(snapshot: dict) -> dict:
    """The monitor snapshot inside a dashboard input, validated."""
    if snapshot.get("format") == "rave-monitor-snapshot/1":
        return snapshot
    embedded = snapshot.get("monitor")
    if isinstance(embedded, dict) and \
            embedded.get("format") == "rave-monitor-snapshot/1":
        return embedded
    raise ValueError(
        "not a monitor snapshot (expected format "
        "'rave-monitor-snapshot/1' or an embedded 'monitor' "
        "section)")


def merge_monitor_snapshots(snapshots: list[dict]) -> dict:
    """Fold several monitors' snapshots into one dashboard view.

    Each input gets a federation slot: the source name from its
    ``wall_meta`` when it is an observability snapshot, else
    ``monitor-<index>``.  Services, labelled metric series, alerts
    (deduplicated on rule+service), SLO scoreboards and tail histories
    are merged; two slots claiming the same service name collide
    last-writer-wins and the overwrite is counted in
    ``scrapes.merge_collisions`` — same contract as ``federate()``.
    """
    if not snapshots:
        raise ValueError("need at least one snapshot to merge")
    merged: dict = {
        "format": "rave-monitor-snapshot/1",
        "time": 0.0,
        "period": 0.0,
        "grid": {},
        "services": {},
        "metrics": {},
        "alerts": [],
        "slo": {},
        "tail": {},
        "scrapes": {"count": 0, "failures": 0, "bytes": 0,
                    "federate_collisions": 0, "merge_collisions": 0},
        "sources": {},
    }
    service_origin: dict[str, str] = {}
    alert_keys: set[tuple[str, str]] = set()
    for index, raw in enumerate(snapshots):
        slots = sorted(raw.get("wall_meta", {})) or [f"monitor-{index}"]
        slot = slots[0]
        snap = _coerce_monitor(raw)
        merged["time"] = max(merged["time"], snap.get("time", 0.0))
        merged["period"] = max(merged["period"], snap.get("period", 0.0))
        merged["sources"][slot] = {
            "time": snap.get("time", 0.0),
            "services": sorted(snap.get("services", {})),
        }
        for name, entry in snap.get("services", {}).items():
            if name in service_origin and service_origin[name] != slot:
                merged["scrapes"]["merge_collisions"] += 1
            service_origin[name] = slot
            merged["services"][name] = entry
        for name, family in snap.get("metrics", {}).items():
            target = merged["metrics"].setdefault(name, {
                "kind": family.get("kind", ""),
                "help": family.get("help", ""),
                "series": [],
            })
            target["series"].extend(family.get("series", []))
        for alert in snap.get("alerts", []):
            key = (alert.get("rule", ""), alert.get("service", ""))
            if key in alert_keys:
                continue
            alert_keys.add(key)
            merged["alerts"].append(alert)
        for name, section in snap.get("slo", {}).items():
            target = merged["slo"].setdefault(
                name, {**section, "services": {}})
            target["services"].update(section.get("services", {}))
        for service, metrics in snap.get("tail", {}).items():
            slot_tail = merged["tail"].setdefault(service, {})
            for metric, history in metrics.items():
                slot_tail.setdefault(metric, []).extend(history)
        # grid aggregates: keep the latest monitor's value per key
        merged["grid"].update(snap.get("grid", {}))
        for key in ("count", "failures", "bytes", "federate_collisions"):
            merged["scrapes"][key] += snap.get("scrapes", {}).get(key, 0)
    for metrics in merged["tail"].values():
        for history in metrics.values():
            history.sort(key=lambda point: point[0])
    return merged


def _quantile_values(snapshot: dict) -> dict[tuple[str, str], float]:
    """Every ``(service, metric) -> value`` quantile in a snapshot."""
    out: dict[tuple[str, str], float] = {}
    for name, entry in snapshot.get("services", {}).items():
        for metric, value in entry.get("metrics", {}).items():
            if metric.endswith(QUANTILE_SUFFIXES):
                out[(name, metric)] = value
    for metric, value in snapshot.get("grid", {}).items():
        if metric.endswith(QUANTILE_SUFFIXES):
            out[("_grid", metric)] = value
    return out


def diff_snapshots(before: dict, after: dict,
                   threshold: float = DIFF_THRESHOLD_SECONDS) -> dict:
    """Compare two snapshots for triage: quantile moves + alert churn.

    Returns ``regressions`` (quantiles that moved up by more than
    ``threshold`` seconds), ``improvements`` (moved down by more),
    ``new_alerts``/``cleared_alerts`` (rule+service churn) and a
    summary ``regressed`` flag — True when anything got worse.
    """
    before = _coerce_monitor(before)
    after = _coerce_monitor(after)
    a_values = _quantile_values(before)
    b_values = _quantile_values(after)
    regressions = []
    improvements = []
    for key in sorted(set(a_values) | set(b_values)):
        service, metric = key
        old = a_values.get(key, 0.0)
        new = b_values.get(key, 0.0)
        delta = new - old
        entry = {"service": service, "metric": metric,
                 "before": old, "after": new, "delta": delta}
        if delta > threshold:
            regressions.append(entry)
        elif delta < -threshold:
            improvements.append(entry)

    def alert_key(alert: dict) -> tuple[str, str]:
        return (alert.get("rule", ""), alert.get("service", ""))

    a_alerts = {alert_key(a): a for a in before.get("alerts", [])}
    b_alerts = {alert_key(a): a for a in after.get("alerts", [])}
    new_alerts = [b_alerts[k] for k in sorted(set(b_alerts) - set(a_alerts))]
    cleared = [a_alerts[k] for k in sorted(set(a_alerts) - set(b_alerts))]
    return {
        "threshold": threshold,
        "regressions": regressions,
        "improvements": improvements,
        "new_alerts": new_alerts,
        "cleared_alerts": cleared,
        "regressed": bool(regressions or new_alerts),
    }


def render_diff(diff: dict) -> str:
    """Render a :func:`diff_snapshots` result as terminal text."""
    lines = [
        "RAVE dashboard diff "
        f"(threshold {diff.get('threshold', 0.0):g}s)",
        "",
        "quantile regressions",
    ]
    regressions = diff.get("regressions", [])
    if not regressions:
        lines.append("  (none)")
    for entry in regressions:
        lines.append(
            f"  {entry['service']:<18} {entry['metric']:<34} "
            f"{entry['before']:.3f}s -> {entry['after']:.3f}s "
            f"(+{entry['delta']:.3f}s)")
    improvements = diff.get("improvements", [])
    if improvements:
        lines.append("")
        lines.append("quantile improvements")
        for entry in improvements:
            lines.append(
                f"  {entry['service']:<18} {entry['metric']:<34} "
                f"{entry['before']:.3f}s -> {entry['after']:.3f}s "
                f"({entry['delta']:.3f}s)")
    lines.append("")
    lines.append("new alerts")
    lines.extend(_alert_rows(diff.get("new_alerts", [])))
    cleared = diff.get("cleared_alerts", [])
    if cleared:
        lines.append("")
        lines.append("cleared alerts")
        lines.extend(_alert_rows(cleared))
    lines.append("")
    lines.append("verdict: " + ("REGRESSED" if diff.get("regressed")
                                else "no regression"))
    return "\n".join(lines) + "\n"


def render_dashboard(snapshot: dict) -> str:
    """Render a monitor snapshot as a multi-section text dashboard."""
    snapshot = _coerce_monitor(snapshot)
    scrapes = snapshot.get("scrapes", {})
    lines = [
        "RAVE grid monitor",
        f"  simulated time: {_fmt(snapshot.get('time', 0.0))}s   "
        f"scrape period: {_fmt(snapshot.get('period', 0.0))}s   "
        f"scrapes: {scrapes.get('count', 0)} "
        f"({scrapes.get('failures', 0)} failed, "
        f"{scrapes.get('bytes', 0)} bytes on the wire)",
        "",
        "services",
    ]
    sources = snapshot.get("sources", {})
    if sources:
        lines[0] = "RAVE grid monitor (federated)"
        for slot in sorted(sources, reverse=True):
            entry = sources[slot]
            lines.insert(1, f"  source {slot}: "
                            f"{len(entry.get('services', []))} service(s) "
                            f"at t={_fmt(entry.get('time', 0.0))}s")
    lines.extend(_service_rows(snapshot.get("services", {})))
    lines.append("")
    lines.append("alerts")
    lines.extend(_alert_rows(snapshot.get("alerts", [])))
    lines.append("")
    lines.append("tail latency (p95)")
    lines.extend(_tail_rows(snapshot.get("tail", {})))
    lines.append("")
    lines.append("SLOs")
    lines.extend(_slo_rows(snapshot.get("slo", {})))
    grids = {name: entry
             for name, entry in snapshot.get("services", {}).items()
             if entry.get("kind") == "grid"}
    for name in sorted(grids):
        lines.append("")
        lines.append(f"admission ({name})")
        lines.extend(_admission_rows(grids[name],
                                     snapshot.get("metrics", {})))
    farms = {name: entry
             for name, entry in snapshot.get("services", {}).items()
             if entry.get("kind") == "farm"}
    for name in sorted(farms):
        lines.append("")
        lines.append(f"render farm ({name})")
        lines.extend(_farm_rows(farms[name], snapshot.get("metrics", {})))
    autoscale = snapshot.get("autoscale")
    if autoscale:
        lines.append("")
        lines.append("render pool (autoscale)")
        lines.extend(_pool_rows(autoscale))
    return "\n".join(lines) + "\n"


__all__ = [
    "DIFF_THRESHOLD_SECONDS",
    "QUANTILE_SUFFIXES",
    "diff_snapshots",
    "merge_monitor_snapshots",
    "render_dashboard",
    "render_diff",
]
