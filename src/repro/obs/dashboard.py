"""Text dashboard for a federated monitor snapshot.

``python -m repro dashboard`` (or any caller with a snapshot dict)
renders per-service gauges, the firing alerts and the SLO scoreboard as
plain terminal text.  Accepts either a monitor-service snapshot
(``rave-monitor-snapshot/1``) directly, or an observability snapshot
that embeds one under a ``monitor`` key (what the benchmark writes).
"""

from __future__ import annotations

_BAR_WIDTH = 24


def _bar(value: float, full_scale: float, width: int = _BAR_WIDTH) -> str:
    if full_scale <= 0:
        return " " * width
    filled = min(width, max(0, round(width * value / full_scale)))
    return "#" * filled + "." * (width - filled)


def _fmt(value: float) -> str:
    return f"{value:.2f}" if isinstance(value, float) else str(value)


def _service_rows(services: dict) -> list[str]:
    rows = [f"  {'service':<18} {'host':<12} {'kind':<9} "
            f"{'fps':>7}  {'utilisation':<{_BAR_WIDTH + 7}} {'events':>6}"]
    for name in sorted(services):
        entry = services[name]
        metrics = entry.get("metrics", {})
        fps = metrics.get("rave_rs_fps")
        util = metrics.get("rave_rs_utilisation")
        fps_text = f"{fps:7.2f}" if fps is not None else f"{'-':>7}"
        if util is not None:
            util_text = f"{util:5.2f} {_bar(util, 1.5)}"
        else:
            util_text = f"{'-':>5} {' ' * _BAR_WIDTH}"
        rows.append(f"  {name:<18} {entry.get('host', '?'):<12} "
                    f"{entry.get('kind', '?'):<9} {fps_text}  "
                    f"{util_text:<{_BAR_WIDTH + 7}} "
                    f"{entry.get('events_seen', 0):>6}")
    return rows


def _alert_rows(alerts: list) -> list[str]:
    if not alerts:
        return ["  (none firing)"]
    rows = []
    for alert in alerts:
        rows.append(
            f"  [{alert.get('severity', '?'):<8}] {alert.get('rule', '?')} "
            f"on {alert.get('service', '?')}: value={_fmt(alert.get('value'))} "
            f"since t={_fmt(alert.get('since'))}s")
    return rows


def _slo_rows(slo: dict) -> list[str]:
    if not slo:
        return ["  (no SLO observations yet)"]
    rows = []
    for name in sorted(slo):
        section = slo[name]
        op = ">=" if section.get("op") == "ge" else "<="
        rows.append(f"  {name} ({section.get('metric')} {op} "
                    f"{section.get('objective')}) — {section.get('source')}")
        for service, score in sorted(section.get("services", {}).items()):
            attainment = score.get("attainment", 0.0)
            open_windows = [w for w in score.get("violations", [])
                            if not w.get("recovered")]
            status = "VIOLATING" if open_windows else (
                "ok" if attainment >= 1.0 else "recovered")
            rows.append(
                f"    {service:<18} {attainment:7.1%} "
                f"({score.get('good')}/{score.get('total')} scrapes, "
                f"{len(score.get('violations', []))} violation "
                f"window(s)) {status}")
    return rows


def _pool_rows(autoscale: dict) -> list[str]:
    history = autoscale.get("pool", [])
    trajectory = " -> ".join(
        f"{entry.get('size', '?')}@t={_fmt(entry.get('time', 0.0))}s"
        for entry in history) or "(no history)"
    limit = autoscale.get("max_services")
    rows = [
        f"  size: {autoscale.get('pool_size', '?')} "
        f"(min {autoscale.get('min_services', '?')}, "
        f"max {limit if limit is not None else 'unbounded'}, "
        f"cooldown {_fmt(autoscale.get('cooldown_seconds', 0.0))}s, "
        f"{autoscale.get('migrations', 0)} migration(s) driven)",
        f"  history: {trajectory}",
    ]
    events = autoscale.get("events", [])
    if not events:
        rows.append("  (no scale events)")
    for event in events:
        rows.append(
            f"  t={_fmt(event.get('time'))}s {event.get('kind', '?'):<8} "
            f"{', '.join(event.get('services', []))} "
            f"(pool {event.get('pool_before', '?')} -> "
            f"{event.get('pool_after', '?')}; {event.get('reason', '?')})")
    return rows


def _admission_rows(grid_entry: dict, federated: dict) -> list[str]:
    """The admission plane of a scraped SessionGridManager payload."""
    metrics = grid_entry.get("metrics", {})
    depth = metrics.get("rave_queue_depth", 0.0)
    rate = metrics.get("rave_admission_rejection_rate", 0.0)
    sessions = metrics.get("rave_admission_sessions", 0.0)
    util = metrics.get("rave_admission_pool_utilisation", 0.0)
    rows = [
        f"  sessions: {sessions:.0f}   queue depth: {depth:.0f}   "
        f"rejection rate: {rate:.2f}/s   "
        f"pool utilisation: {util:5.2f} {_bar(util, 1.0)}",
    ]
    tenants = federated.get("rave_tenant_sessions", {}).get("series", [])
    for entry in sorted(tenants,
                        key=lambda e: e.get("labels", {}).get("tenant", "")):
        tenant = entry.get("labels", {}).get("tenant", "?")
        rows.append(f"    tenant {tenant:<16} "
                    f"{entry.get('value', 0.0):.0f} session(s)")
    return rows


def _farm_rows(farm_entry: dict, federated: dict) -> list[str]:
    """The frame-queue plane of a scraped FrameQueueService payload."""
    metrics = farm_entry.get("metrics", {})
    depth = metrics.get("rave_farm_queue_depth", 0.0)
    leases = metrics.get("rave_farm_active_leases", 0.0)
    fps = metrics.get("rave_farm_frames_per_second", 0.0)
    done = metrics.get("rave_farm_frames_total", 0.0)
    requeues = metrics.get("rave_farm_requeues_total", 0.0)
    rows = [
        f"  queue depth: {depth:.0f}   active leases: {leases:.0f}   "
        f"throughput: {fps:.2f} frames/s   "
        f"completed: {done:.0f}   re-queued: {requeues:.0f}",
    ]
    jobs = federated.get("rave_farm_job_progress", {}).get("series", [])
    for entry in sorted(jobs,
                        key=lambda e: e.get("labels", {}).get("job", "")):
        job = entry.get("labels", {}).get("job", "?")
        progress = entry.get("value", 0.0)
        rows.append(f"    job {job:<20} {progress:7.1%} "
                    f"{_bar(progress, 1.0)}")
    return rows


def render_dashboard(snapshot: dict) -> str:
    """Render a monitor snapshot as a multi-section text dashboard."""
    if snapshot.get("format") != "rave-monitor-snapshot/1":
        embedded = snapshot.get("monitor")
        if isinstance(embedded, dict) and \
                embedded.get("format") == "rave-monitor-snapshot/1":
            snapshot = embedded
        else:
            raise ValueError(
                "not a monitor snapshot (expected format "
                "'rave-monitor-snapshot/1' or an embedded 'monitor' "
                "section)")
    scrapes = snapshot.get("scrapes", {})
    lines = [
        "RAVE grid monitor",
        f"  simulated time: {_fmt(snapshot.get('time', 0.0))}s   "
        f"scrape period: {_fmt(snapshot.get('period', 0.0))}s   "
        f"scrapes: {scrapes.get('count', 0)} "
        f"({scrapes.get('failures', 0)} failed, "
        f"{scrapes.get('bytes', 0)} bytes on the wire)",
        "",
        "services",
    ]
    lines.extend(_service_rows(snapshot.get("services", {})))
    lines.append("")
    lines.append("alerts")
    lines.extend(_alert_rows(snapshot.get("alerts", [])))
    lines.append("")
    lines.append("SLOs")
    lines.extend(_slo_rows(snapshot.get("slo", {})))
    grids = {name: entry
             for name, entry in snapshot.get("services", {}).items()
             if entry.get("kind") == "grid"}
    for name in sorted(grids):
        lines.append("")
        lines.append(f"admission ({name})")
        lines.extend(_admission_rows(grids[name],
                                     snapshot.get("metrics", {})))
    farms = {name: entry
             for name, entry in snapshot.get("services", {}).items()
             if entry.get("kind") == "farm"}
    for name in sorted(farms):
        lines.append("")
        lines.append(f"render farm ({name})")
        lines.extend(_farm_rows(farms[name], snapshot.get("metrics", {})))
    autoscale = snapshot.get("autoscale")
    if autoscale:
        lines.append("")
        lines.append("render pool (autoscale)")
        lines.extend(_pool_rows(autoscale))
    return "\n".join(lines) + "\n"


__all__ = ["render_dashboard"]
