"""Declarative alert rules and SLO targets for the monitoring plane.

Two evaluation engines over scraped telemetry:

- :class:`RuleEngine` fires :class:`Alert` objects from declarative
  :class:`AlertRule` thresholds with the *same sustained semantics* as
  :class:`repro.core.migration.LoadTracker` — the observation window must
  span the rule's duration and every sample inside the trailing window
  must violate, so a single spike never alerts.  The default rules use
  the migration policy's own thresholds (overload below 8 fps,
  underload below 0.3 utilisation, sustained 3 s), which is what lets
  ``WorkloadMigrator.plan(session, alerts=...)`` consume monitor alerts
  as a drop-in signal source.

- :class:`SloTracker` scores each scrape against :class:`SloTarget`
  objectives derived from the paper's published rates (Table 2 streaming
  fps, the §3.2.7 interactivity threshold, the 10 fps placement target)
  and reports attainment plus violation windows — including whether each
  window recovered.

Everything here is plain data + deques: no clocks, no network, and the
only ``repro`` import is the constants-only kind vocabulary
(:mod:`repro.obs.vocab`), so the migration layer can share the
threshold constants without an import cycle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.obs.quantiles import quantile_suffix
from repro.obs.vocab import (
    ALERT_OVERLOAD,
    ALERT_UNDERLOAD,
    FARM_BACKLOG_KIND,
    FARM_STARVATION_KIND,
    GRID_OVERLOAD_KIND,
    GRID_SATURATED_KIND,
    GRID_UNDERLOAD_KIND,
    SERVICE_GRID,
    SERVICE_RENDER,
    TAIL_LATENCY_KIND,
)

#: the migration policy's thresholds (paper §3.2.7), shared with
#: :class:`repro.core.migration.WorkloadMigrator`
DEFAULT_OVERLOAD_FPS = 8.0
DEFAULT_UNDERLOAD_UTILISATION = 0.3
DEFAULT_SMOOTHING_SECONDS = 3.0

#: tail-latency thresholds: p95 admission queue wait the session grid may
#: sustain, and how long a breach must last before the alert fires
TAIL_QUEUE_WAIT_SECONDS = 0.5
TAIL_SUSTAIN_SECONDS = 5.0
#: p95 per-frame render latency the batch farm may sustain
TAIL_FARM_RENDER_SECONDS = 2.5


@dataclass(frozen=True)
class AlertRule:
    """One declarative threshold over a flattened telemetry metric.

    A rule may target a distribution's tail instead of a scalar: with
    ``quantile=0.95`` the rule evaluates the ``<metric>_p95`` key that
    :func:`~repro.obs.telemetry.flatten_metrics` derives from a
    histogram's scraped buckets (or that the monitor federates
    grid-wide), so "p95 queue wait above 0.5 s sustained 5 s" is one
    declaration, not bespoke plumbing.
    """

    name: str
    metric: str                         # e.g. "rave_rs_fps"
    kind: str                           # "overload" | "underload" | custom
    below: float | None = None
    above: float | None = None
    for_seconds: float = DEFAULT_SMOOTHING_SECONDS
    severity: str = "warning"
    quantile: float | None = None       # e.g. 0.95 -> evaluate <metric>_p95

    def __post_init__(self) -> None:
        if self.below is None and self.above is None:
            raise ValueError(f"rule {self.name!r} needs below= or above=")
        if self.quantile is not None and not 0.0 < self.quantile < 1.0:
            raise ValueError(
                f"rule {self.name!r} quantile must be in (0, 1), "
                f"got {self.quantile!r}")

    @property
    def metric_key(self) -> str:
        """The flattened-values key this rule evaluates."""
        if self.quantile is None:
            return self.metric
        return f"{self.metric}_{quantile_suffix(self.quantile)}"

    def violates(self, value: float) -> bool:
        if self.below is not None and value < self.below:
            return True
        if self.above is not None and value > self.above:
            return True
        return False


@dataclass(frozen=True)
class Alert:
    """A rule sustained long enough to fire, for one service."""

    rule: str
    kind: str
    service: str
    since: float            # start of the violating window
    last_time: float        # most recent violating sample
    value: float            # most recent sample value
    severity: str


def default_rules() -> list[AlertRule]:
    """The migration policy's thresholds as monitor alert rules."""
    return [
        AlertRule(name="render-overload", metric="rave_rs_fps",
                  kind=ALERT_OVERLOAD, below=DEFAULT_OVERLOAD_FPS,
                  for_seconds=DEFAULT_SMOOTHING_SECONDS,
                  severity="critical"),
        AlertRule(name="render-underload", metric="rave_rs_utilisation",
                  kind=ALERT_UNDERLOAD, below=DEFAULT_UNDERLOAD_UTILISATION,
                  for_seconds=DEFAULT_SMOOTHING_SECONDS,
                  severity="warning"),
    ] + grid_rules() + admission_rules() + farm_rules() \
        + tail_latency_rules()


def grid_rules() -> list[AlertRule]:
    """Grid-wide aggregate thresholds over the monitor's pooled view.

    Evaluated against the pseudo-service the monitor computes from every
    scraped render service (``rave_grid_mean_fps``,
    ``rave_grid_mean_utilisation``).  A sustained grid-wide crossing means
    shuffling work between existing members cannot help: these are the
    signals the :class:`~repro.core.autoscale.RecruitmentAutoscaler`
    grows and shrinks the session pool on.
    """
    return [
        AlertRule(name="grid-overload", metric="rave_grid_mean_fps",
                  kind=GRID_OVERLOAD_KIND, below=DEFAULT_OVERLOAD_FPS,
                  for_seconds=DEFAULT_SMOOTHING_SECONDS,
                  severity="critical"),
        AlertRule(name="grid-underload",
                  metric="rave_grid_mean_utilisation",
                  kind=GRID_UNDERLOAD_KIND,
                  below=DEFAULT_UNDERLOAD_UTILISATION,
                  for_seconds=DEFAULT_SMOOTHING_SECONDS,
                  severity="warning"),
    ]


def admission_rules() -> list[AlertRule]:
    """Admission-plane saturation thresholds over the scraped grid view.

    Evaluated against the aggregates the monitor derives from a scraped
    :class:`~repro.core.grid.SessionGridManager` payload.  A sustained
    non-empty admission queue, or any rejections inside the trailing
    window, mean the pool is full for the *fleet* — not one session —
    and these are the signals the autoscaler's grid mode grows on.
    """
    return [
        AlertRule(name="grid-saturated", metric="rave_grid_queue_depth",
                  kind=GRID_SATURATED_KIND, above=0.5,
                  for_seconds=DEFAULT_SMOOTHING_SECONDS,
                  severity="critical"),
        AlertRule(name="grid-rejecting",
                  metric="rave_grid_rejection_rate",
                  kind=GRID_SATURATED_KIND, above=0.0,
                  for_seconds=DEFAULT_SMOOTHING_SECONDS,
                  severity="critical"),
    ]


def farm_rules() -> list[AlertRule]:
    """Render-farm backlog thresholds over the monitor's pooled view.

    Evaluated against the aggregate the monitor derives from every
    scraped :class:`~repro.farm.queue_service.FrameQueueService`
    (``rave_grid_farm_backlog`` = pending + leased frames fleet-wide).
    A sustained non-empty backlog is the second signal source the
    :class:`~repro.core.autoscale.RecruitmentAutoscaler` grows the farm
    pool on — and its absence is what lets the farm release workers.

    ``farm-starvation`` fires when any job sits with pending frames and
    no lease grant past the queue's starvation threshold, sustained —
    the fairness regression the scheduler's priority + deficit-round-
    robin interleave exists to prevent, made observable instead of
    silent.
    """
    return [
        AlertRule(name="farm-backlog", metric="rave_grid_farm_backlog",
                  kind=FARM_BACKLOG_KIND, above=0.5,
                  for_seconds=DEFAULT_SMOOTHING_SECONDS,
                  severity="warning"),
        AlertRule(name="farm-starvation",
                  metric="rave_grid_farm_starved_jobs",
                  kind=FARM_STARVATION_KIND, above=0.5,
                  for_seconds=DEFAULT_SMOOTHING_SECONDS,
                  severity="critical"),
    ]


def tail_latency_rules() -> list[AlertRule]:
    """Quantile-targeting thresholds over histogram tails.

    Per-service: each session grid's own p95 admission queue wait
    (flattened from its scraped ``rave_queue_wait_seconds`` buckets).
    Grid-wide: the same signal federated by the monitor — per-``le``
    bucket counts summed across every scraped grid *before* estimation
    (``rave_grid_queue_wait_seconds_p95``), so the alert reflects the
    merged distribution rather than an average of per-service
    percentiles.  The farm rule watches the federated p95 per-frame
    render latency of the batch queue(s).
    """
    return [
        AlertRule(name="queue-wait-p95",
                  metric="rave_queue_wait_seconds", quantile=0.95,
                  kind=TAIL_LATENCY_KIND, above=TAIL_QUEUE_WAIT_SECONDS,
                  for_seconds=TAIL_SUSTAIN_SECONDS,
                  severity="critical"),
        AlertRule(name="grid-queue-wait-p95",
                  metric="rave_grid_queue_wait_seconds", quantile=0.95,
                  kind=TAIL_LATENCY_KIND, above=TAIL_QUEUE_WAIT_SECONDS,
                  for_seconds=TAIL_SUSTAIN_SECONDS,
                  severity="critical"),
        AlertRule(name="farm-render-p95",
                  metric="rave_grid_farm_render_seconds", quantile=0.95,
                  kind=TAIL_LATENCY_KIND, above=TAIL_FARM_RENDER_SECONDS,
                  for_seconds=TAIL_SUSTAIN_SECONDS,
                  severity="warning"),
    ]


class RuleEngine:
    """Evaluates alert rules over per-service sample histories."""

    def __init__(self, rules=None, window_seconds: float | None = None
                 ) -> None:
        self.rules = list(rules) if rules is not None else default_rules()
        if window_seconds is None:
            longest = max((r.for_seconds for r in self.rules), default=3.0)
            window_seconds = max(10.0, 3 * longest)
        self.window_seconds = window_seconds
        #: (rule name, service) -> deque[(time, value)]
        self._history: dict[tuple[str, str], deque] = {}

    def observe(self, service: str, time: float,
                values: dict[str, float]) -> None:
        """Feed one scrape's flattened values into every matching rule."""
        for rule in self.rules:
            if rule.metric_key not in values:
                continue
            key = (rule.name, service)
            history = self._history.setdefault(key, deque())
            if history and time < history[-1][0]:
                raise ValueError("telemetry samples must be time-ordered")
            history.append((time, values[rule.metric_key]))
            cutoff = time - self.window_seconds
            while history and history[0][0] < cutoff:
                history.popleft()

    def _sustained(self, rule: AlertRule, history: deque
                   ) -> tuple[float, float, float] | None:
        """(since, last_time, value) when the rule fires, else None.

        Mirrors ``LoadTracker._sustained_below``: the window must span
        ``for_seconds`` and every sample in the trailing duration —
        including one landing exactly on the cutoff — must violate.
        """
        if not history:
            return None
        span = history[-1][0] - history[0][0]
        if span < rule.for_seconds:
            return None
        cutoff = history[-1][0] - rule.for_seconds
        tail = [(t, v) for t, v in history if t >= cutoff]
        if not all(rule.violates(v) for _, v in tail):
            return None
        return tail[0][0], history[-1][0], history[-1][1]

    def firing(self) -> list[Alert]:
        """Every (rule, service) currently sustained, deterministic order."""
        alerts: list[Alert] = []
        for (rule_name, service), history in sorted(self._history.items()):
            rule = next(r for r in self.rules if r.name == rule_name)
            hit = self._sustained(rule, history)
            if hit is None:
                continue
            since, last_time, value = hit
            alerts.append(Alert(rule=rule.name, kind=rule.kind,
                                service=service, since=since,
                                last_time=last_time, value=value,
                                severity=rule.severity))
        return alerts


# -- SLOs ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SloTarget:
    """A service-level objective over a flattened telemetry metric.

    Like :class:`AlertRule`, a target may govern a distribution's tail:
    ``quantile=0.95`` makes the tracker score the derived
    ``<metric>_p95`` key, so "p95 queue wait ≤ 0.5 s" is a first-class
    objective in the SLO report.
    """

    name: str
    metric: str
    objective: float
    op: str = "ge"                      # "ge" (value >= objective) | "le"
    applies_to: str = SERVICE_RENDER    # telemetry kind the SLO governs
    description: str = ""
    source: str = ""                    # provenance in the paper
    quantile: float | None = None       # e.g. 0.95 -> score <metric>_p95

    @property
    def metric_key(self) -> str:
        """The flattened-values key this target scores."""
        if self.quantile is None:
            return self.metric
        return f"{self.metric}_{quantile_suffix(self.quantile)}"

    def met(self, value: float) -> bool:
        return value >= self.objective if self.op == "ge" \
            else value <= self.objective


#: objectives lifted from the paper's published rates
PAPER_SLOS = (
    SloTarget(name="interactive-fps", metric="rave_rs_fps", objective=8.0,
              op="ge", applies_to=SERVICE_RENDER,
              description="sustain the interactive rate the migration "
                          "policy defends",
              source="paper §3.2.7 (overload threshold)"),
    SloTarget(name="placement-target-fps", metric="rave_rs_fps",
              objective=10.0, op="ge", applies_to=SERVICE_RENDER,
              description="hold the frame rate the scheduler placed for",
              source="DEFAULT_TARGET_FPS (paper §3.2.5 placement budget)"),
    SloTarget(name="pda-stream-fps", metric="rave_stream_fps",
              objective=2.9, op="ge", applies_to=SERVICE_RENDER,
              description="stream to the PDA at least at the published "
                          "skeletal-hand rate",
              source="paper Table 2 (skeletal hand on the Zaurus, 2.9 fps)"),
    SloTarget(name="render-utilisation", metric="rave_rs_utilisation",
              objective=1.0, op="le", applies_to=SERVICE_RENDER,
              description="stay within the polygon budget at target fps",
              source="paper §3.2.5 (capacity model)"),
    SloTarget(name="queue-wait-p95", metric="rave_queue_wait_seconds",
              quantile=0.95, objective=TAIL_QUEUE_WAIT_SECONDS, op="le",
              applies_to=SERVICE_GRID,
              description="keep the session grid's p95 admission queue "
                          "wait interactive",
              source="tail-latency plane (ROADMAP): admission must not "
                     "erode the §3.2.7 interactivity budget"),
)


@dataclass
class _SloState:
    good: int = 0
    total: int = 0
    #: closed + at most one open violation window
    violations: list = field(default_factory=list)
    _open: dict | None = None


class SloTracker:
    """Scores scrapes against SLO targets; reports attainment + windows."""

    def __init__(self, targets=PAPER_SLOS) -> None:
        self.targets = tuple(targets)
        #: (target name, service) -> _SloState
        self._state: dict[tuple[str, str], _SloState] = {}

    def observe(self, service: str, kind: str, time: float,
                values: dict[str, float]) -> None:
        for target in self.targets:
            if (target.applies_to != kind
                    or target.metric_key not in values):
                continue
            value = values[target.metric_key]
            state = self._state.setdefault((target.name, service),
                                           _SloState())
            state.total += 1
            if target.met(value):
                state.good += 1
                if state._open is not None:
                    state._open["end"] = time
                    state._open["recovered"] = True
                    state.violations.append(state._open)
                    state._open = None
            else:
                if state._open is None:
                    state._open = {"start": time, "end": None,
                                   "recovered": False, "worst": value}
                else:
                    worst = state._open["worst"]
                    state._open["worst"] = (min(worst, value)
                                            if target.op == "ge"
                                            else max(worst, value))

    def report(self) -> dict:
        """``{target: {service: {attainment, good, total, violations}}}``
        plus the objective metadata the dashboard renders."""
        out: dict = {}
        for target in self.targets:
            section: dict = {
                "metric": target.metric_key,
                "objective": target.objective,
                "op": target.op,
                "description": target.description,
                "source": target.source,
                "services": {},
            }
            if target.quantile is not None:
                section["quantile"] = target.quantile
            for (name, service), state in sorted(self._state.items()):
                if name != target.name:
                    continue
                windows = list(state.violations)
                if state._open is not None:
                    windows.append(dict(state._open))
                section["services"][service] = {
                    "good": state.good,
                    "total": state.total,
                    "attainment": (state.good / state.total
                                   if state.total else 1.0),
                    "violations": windows,
                }
            if section["services"]:
                out[target.name] = section
        return out


__all__ = [
    "DEFAULT_OVERLOAD_FPS",
    "DEFAULT_UNDERLOAD_UTILISATION",
    "DEFAULT_SMOOTHING_SECONDS",
    "TAIL_QUEUE_WAIT_SECONDS",
    "TAIL_SUSTAIN_SECONDS",
    "TAIL_FARM_RENDER_SECONDS",
    "ALERT_OVERLOAD",
    "ALERT_UNDERLOAD",
    "GRID_OVERLOAD_KIND",
    "GRID_UNDERLOAD_KIND",
    "GRID_SATURATED_KIND",
    "FARM_BACKLOG_KIND",
    "FARM_STARVATION_KIND",
    "TAIL_LATENCY_KIND",
    "AlertRule",
    "Alert",
    "default_rules",
    "grid_rules",
    "admission_rules",
    "farm_rules",
    "tail_latency_rules",
    "RuleEngine",
    "SloTarget",
    "PAPER_SLOS",
    "SloTracker",
]
