"""Failure flight recorder: a bounded ring of structured events.

Chaos tests and the fault-tolerance stack generate a lot of history —
placements, migrations, lease transitions, injected faults, codec
switches — and when something dies, the question is always "what happened
in the seconds before?".  The :class:`FlightRecorder` answers it the way
an aircraft recorder does: a fixed-capacity ring buffer of cheap
structured events, dumped automatically when a watched service is
declared dead (``core/health.py``) or a host is crashed by the injector
(``network/faults.py``).

Dump deduplication: an injected crash *requests* a dump with a grace
period rather than dumping immediately, because the interesting events
(lease suspicion, death, recovery reassignments) happen *after* the
crash.  If the heartbeat path produces its death dump within the grace
window — its ``events_seen`` covers the crash marker — the deferred
crash dump is suppressed, so one failure leaves exactly one timeline.
A crash with no health monitoring attached still dumps after the grace
period, so nothing is ever lost silently.

The recorder is passive: it never reads a clock (callers stamp event
times), so it composes with any simulator and stays deterministic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class FlightEvent:
    """One recorded moment: simulated time, a kind tag, and free detail.

    ``trace`` carries the originating request's trace id (empty when the
    event was not caused by a traced request), so a flight-recorder
    timeline can be cross-referenced against the tracer's spans for the
    same id.
    """

    time: float
    kind: str        # e.g. "placement" | "migration" | "lease-transition" |
                     # "recovery" | "fault:crash" | "codec-switch"
    detail: str = ""
    trace: str = ""


class FlightRecorder:
    """Bounded ring buffer of :class:`FlightEvent` with triggered dumps."""

    enabled = True

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self._events: deque[FlightEvent] = deque(maxlen=capacity)
        #: total events ever noted (ring overflow never hides the count)
        self.seen = 0
        #: completed dumps, oldest first
        self.dumps: list[dict] = []

    def note(self, kind: str, time: float = 0.0, detail: str = "",
             trace: str = "") -> None:
        """Record one event (cheap: one dataclass, one deque append)."""
        self._events.append(FlightEvent(time=time, kind=kind, detail=detail,
                                        trace=trace))
        self.seen += 1

    def events(self, kind: str | None = None) -> list[FlightEvent]:
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def dump(self, reason: str, time: float = 0.0) -> dict:
        """Snapshot the ring now; the dump joins :attr:`dumps` and returns."""
        record = {
            "reason": reason,
            "time": time,
            "events_seen": self.seen,
            "events": [
                {"time": e.time, "kind": e.kind, "detail": e.detail,
                 **({"trace": e.trace} if e.trace else {})}
                for e in self._events
            ],
        }
        self.dumps.append(record)
        return record

    def request_dump(self, reason: str, sim, grace: float = 10.0) -> None:
        """Dump after ``grace`` simulated seconds unless a later dump
        already covers everything noted up to this request.

        This is the crash path: the heartbeat-death dump (if health
        monitoring is attached) arrives within the grace window and
        subsumes the crash events, so the deferred dump stands down.
        The deferred event is a daemon: it never keeps ``sim.run()``
        alive on its own.
        """
        marker = self.seen
        dumps_before = len(self.dumps)

        def fire() -> None:
            for record in self.dumps[dumps_before:]:
                if record["events_seen"] >= marker:
                    return
            self.dump(reason, time=sim.now)

        sim.schedule(grace, fire, daemon=True)


class NullRecorder(FlightRecorder):
    """Recorder that stores nothing (the :data:`NULL_OBS` default)."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def note(self, kind: str, time: float = 0.0, detail: str = "",
             trace: str = "") -> None:
        pass

    def dump(self, reason: str, time: float = 0.0) -> dict:
        return {}

    def request_dump(self, reason: str, sim, grace: float = 10.0) -> None:
        pass


NULL_RECORDER = NullRecorder()

__all__ = [
    "FlightEvent",
    "FlightRecorder",
    "NullRecorder",
    "NULL_RECORDER",
]
