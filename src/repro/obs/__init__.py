"""Observability: metrics and frame tracing for the simulated grid.

The paper's argument is built on *measured* behaviour — capacity
interrogation times, the Table 2 streaming rates, migration thresholds —
so the reproduction needs a way to observe itself.  This subpackage
provides it, NetLogger-style, entirely on the simulated clock:

- :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of labelled
  counters, gauges and histograms;
- :mod:`repro.obs.tracing` — a :class:`Tracer` of per-frame pipeline
  spans (``render → encode → transfer → composite → blit``) keyed to
  ``repro.network.clock`` time;
- :mod:`repro.obs.export` — Prometheus text and JSON snapshot exporters;
- :mod:`repro.obs.telemetry` — per-service registries + event streams,
  scrapeable over the simulated network;
- :mod:`repro.obs.rules` — declarative alert rules and paper-derived SLO
  targets evaluated by the monitor service;
- :mod:`repro.obs.recorder` — the failure flight recorder (bounded event
  ring dumped on heartbeat death or injected crash);
- :mod:`repro.obs.dashboard` — text dashboard over a federated monitor
  snapshot (``python -m repro dashboard``).

Instrumented hot paths (scheduler, migrator, session, health monitor,
network, streaming, adaptive compression) read the *active* bundle via
:func:`active`.  By default that is :data:`NULL_OBS` — shared no-op
instruments, nothing allocated, nothing stored — so instrumentation is
free until someone attaches a registry:

    from repro import obs

    with obs.observed(clock=tb.clock) as o:
        ...run a scenario...
        print(obs.prometheus_text(o.metrics))

or imperatively with :func:`install` / :func:`uninstall`.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.export import prometheus_text, snapshot, write_snapshot
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
)
from repro.obs.recorder import (
    FlightEvent,
    FlightRecorder,
    NullRecorder,
    NULL_RECORDER,
)
from repro.obs.tracing import (
    NullTracer,
    NULL_TRACER,
    Span,
    TraceContext,
    Tracer,
    new_trace_context,
)


class Observability:
    """A registry + tracer + flight-recorder trio, installable process-wide.

    ``enabled`` lets hot paths skip label formatting and timing math in a
    single attribute check when observability is off.
    """

    __slots__ = ("metrics", "tracer", "recorder", "enabled")

    def __init__(self, metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 recorder: FlightRecorder | None = None,
                 enabled: bool = True) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        if recorder is None:
            recorder = FlightRecorder() if enabled else NULL_RECORDER
        self.recorder = recorder
        self.enabled = enabled

    def snapshot(self, clock=None, meta: dict | None = None) -> dict:
        return snapshot(self.metrics, self.tracer, clock=clock, meta=meta,
                        recorder=self.recorder if self.enabled else None)


#: the permanent off-switch: shared no-op instruments, stores nothing
NULL_OBS = Observability(NULL_REGISTRY, NULL_TRACER, NULL_RECORDER,
                         enabled=False)

_active: Observability = NULL_OBS


def active() -> Observability:
    """The currently installed bundle (:data:`NULL_OBS` when off)."""
    return _active


def install(obs: Observability | None = None, *,
            clock=None) -> Observability:
    """Attach an observability bundle as the process-wide default.

    With no argument, builds a fresh registry and a tracer bound to
    ``clock`` (so :meth:`Tracer.span` works against simulated time).
    """
    global _active
    if obs is None:
        obs = Observability(MetricsRegistry(), Tracer(clock=clock))
    _active = obs
    return obs


def uninstall() -> None:
    """Detach the active bundle, restoring the no-op default."""
    global _active
    _active = NULL_OBS


@contextmanager
def observed(obs: Observability | None = None, *, clock=None):
    """Scoped :func:`install`; always restores the no-op default."""
    bundle = install(obs, clock=clock)
    try:
        yield bundle
    finally:
        uninstall()


__all__ = [
    "Observability",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "TraceContext",
    "new_trace_context",
    "FlightEvent",
    "FlightRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "NULL_OBS",
    "active",
    "install",
    "uninstall",
    "observed",
    "prometheus_text",
    "snapshot",
    "write_snapshot",
]
