"""RAVE's primary contribution: resource-aware workload distribution.

The policy layer that makes the system "resource-aware":

- :mod:`repro.core.capacity` — render-service capacity interrogation
  ("available polygons per second, texture memory, support for hardware
  assisted volume rendering");
- :mod:`repro.core.cost` — how much capacity a set of scene nodes or tiles
  consumes ("how much data are contained in a given set of nodes");
- :mod:`repro.core.scheduler` — render-service selection for a client
  request, including the refusal path;
- :mod:`repro.core.distribution` — the two distribution modes: scene-subset
  (dataset) distribution and framebuffer (tile) distribution;
- :mod:`repro.core.recruitment` — UDDI-driven recruitment of render
  services not yet connected to the data service;
- :mod:`repro.core.migration` — load-triggered workload migration with
  fine-grain node selection and usage smoothing;
- :mod:`repro.core.autoscale` — alert-driven recruitment autoscaling:
  monitor alerts grow the pool via UDDI on sustained grid-wide overload
  and drain-and-release idle members on sustained underload;
- :mod:`repro.core.health` — lease-based failure detection (heartbeats,
  alive/suspected/dead transitions) feeding automatic recovery;
- :mod:`repro.core.session` — the orchestrator tying data service, render
  services, clients and policies into a collaborative session;
- :mod:`repro.core.grid` — the multi-tenant session grid: a shared
  render pool with admission control (admit / queue / reject-with-429),
  per-tenant quotas and graceful overload shedding.
"""

from repro.core.capacity import CapacityReport, RenderCapacity, interrogate
from repro.core.cost import NodeCost, node_cost, subtree_cost, tile_cost
from repro.core.scheduler import RenderServiceScheduler, Placement
from repro.core.distribution import (
    DatasetDistributor,
    DistributionPlan,
    FramebufferDistributor,
    TilePlan,
)
from repro.core.recruitment import Recruiter, RecruitmentResult
from repro.core.autoscale import RecruitmentAutoscaler, ScaleEvent
from repro.core.migration import (
    LoadSample,
    LoadTracker,
    MigrationAction,
    WorkloadMigrator,
)
from repro.core.health import HeartbeatMonitor, HeartbeatSource
from repro.core.session import CollaborativeSession, RecoveryReport
from repro.core.grid import (
    AdmissionDecision,
    GridSession,
    SessionGridManager,
    ShedAction,
    TenantQuota,
)

__all__ = [
    "RenderCapacity",
    "CapacityReport",
    "interrogate",
    "NodeCost",
    "node_cost",
    "subtree_cost",
    "tile_cost",
    "RenderServiceScheduler",
    "Placement",
    "DatasetDistributor",
    "FramebufferDistributor",
    "DistributionPlan",
    "TilePlan",
    "Recruiter",
    "RecruitmentResult",
    "RecruitmentAutoscaler",
    "ScaleEvent",
    "LoadSample",
    "LoadTracker",
    "MigrationAction",
    "WorkloadMigrator",
    "CollaborativeSession",
    "RecoveryReport",
    "HeartbeatMonitor",
    "HeartbeatSource",
    "SessionGridManager",
    "TenantQuota",
    "GridSession",
    "AdmissionDecision",
    "ShedAction",
]
