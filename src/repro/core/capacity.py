"""Capacity metrics and interrogation.

"The data service interrogates the render service for its capacity
(available polygons per second, texture memory, support for hardware
assisted volume rendering, etc.)" — :class:`RenderCapacity` is that answer,
and :func:`interrogate` performs the timed SOAP exchange.

Capacities are expressed against an *interactive frame-rate target*: a
service with R polygons/second aiming at F frames/second can host
``R / F`` polygons of scene ("if an underloaded service has capacity for
another 5k polygons/sec and still maintain its current interactive frame
rate...").
"""

from __future__ import annotations

from dataclasses import dataclass

#: the interactivity contract capacity is quoted against
DEFAULT_TARGET_FPS = 10.0


@dataclass(frozen=True)
class RenderCapacity:
    """What a render service can do, as advertised over SOAP."""

    polygons_per_second: float
    points_per_second: float
    voxels_per_second: float
    texture_memory_bytes: int
    volume_support: bool
    graphics_pipes: int = 1

    def polygon_budget(self, target_fps: float = DEFAULT_TARGET_FPS) -> float:
        """Scene polygons hostable while sustaining ``target_fps``."""
        if target_fps <= 0:
            raise ValueError("target_fps must be positive")
        return self.polygons_per_second / target_fps

    def point_budget(self, target_fps: float = DEFAULT_TARGET_FPS) -> float:
        if target_fps <= 0:
            raise ValueError("target_fps must be positive")
        return self.points_per_second / target_fps

    def voxel_budget(self, target_fps: float = DEFAULT_TARGET_FPS) -> float:
        if target_fps <= 0:
            raise ValueError("target_fps must be positive")
        return self.voxels_per_second / target_fps


@dataclass(frozen=True)
class CapacityReport:
    """A capacity answer plus the interrogation's provenance and cost."""

    service_name: str
    host: str
    capacity: RenderCapacity
    #: load already committed on the service, in polygons-at-target-fps
    committed_polygons: float
    elapsed_seconds: float

    def headroom(self, target_fps: float = DEFAULT_TARGET_FPS) -> float:
        """Remaining polygon budget at the target frame rate."""
        return max(0.0,
                   self.capacity.polygon_budget(target_fps)
                   - self.committed_polygons)


def capacity_from_profile(profile) -> RenderCapacity:
    """Derive the advertised capacity from a machine profile.

    Point throughput tracks polygon throughput (a point is a cheap
    primitive, ~3x the vertex rate); voxel throughput is fill-rate-bound
    for machines with hardware volume support, zero otherwise.
    """
    return RenderCapacity(
        polygons_per_second=profile.polygon_rate,
        points_per_second=profile.polygon_rate * 3.0,
        voxels_per_second=(profile.fill_rate * 0.25
                           if profile.volume_support else 0.0),
        texture_memory_bytes=profile.texture_memory,
        volume_support=profile.volume_support,
        graphics_pipes=profile.graphics_pipes,
    )


def interrogate(render_service, requester_host: str) -> CapacityReport:
    """The data service's timed ``getCapacity`` SOAP call."""
    from repro.network.transport import SoapChannel

    network = render_service.container.network
    channel = SoapChannel(network, requester_host, render_service.host,
                          cpu_factor=render_service.container.cpu_factor)
    cap = render_service.capacity()
    _, timing = channel.request(
        ("getCapacity", {}),
        ("getCapacityResponse", {
            "polygonsPerSecond": cap.polygons_per_second,
            "textureMemoryBytes": cap.texture_memory_bytes,
            "volumeSupport": cap.volume_support,
        }),
    )
    return CapacityReport(
        service_name=render_service.name,
        host=render_service.host,
        capacity=cap,
        committed_polygons=render_service.committed_polygons(),
        elapsed_seconds=timing.total_seconds,
    )
