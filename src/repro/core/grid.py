"""Multi-tenant session grid: admission control, quotas, overload shedding.

The paper's grid serves one collaborative session; every layer built on
top of it so far (fault tolerance, monitoring, autoscaling) manages a
single :class:`~repro.core.session.CollaborativeSession` over a handful
of services.  The ROADMAP's north star — heavy traffic from many users —
needs the opposite decomposition: **one shared render-service pool, many
sessions bin-packed onto it**, with an explicit service contract at the
front door.  Rendering-as-a-Service systems treat admission and tenant
isolation as that contract: a full grid answers a new request with an
explicit 429-style refusal rather than degrading everyone silently.

:class:`SessionGridManager` owns the pool and makes every decision
auditable:

- **admit** — the request's capacity demand fits the pool's spare
  capacity and the tenant's quota: a :class:`CollaborativeSession` is
  built over the members with the most headroom and placed immediately;
- **queue** — the grid is momentarily full but the bounded FIFO has
  room: the caller gets its queue position, and :meth:`pump` admits
  head-of-line requests as capacity frees (a deadline bounds the wait —
  expiry converts the entry into an explicit reject);
- **reject** — quota exceeded, queue full, or the queued deadline
  passed: the decision carries a ready-to-send 429 frame
  (:func:`repro.services.protocol.frame_reject`) with a ``retry_after``
  hint, surfaced to thin clients as
  :class:`~repro.errors.TooManyRequestsError`.

Capacity is accounted in polygons·per·second: a session admitted for
``D`` polygons at ``F`` fps consumes ``D × F`` pps of the pool's
aggregate polygon rate for as long as its shares stay resident on the
members.  Under sustained overload :meth:`shed` degrades the
lowest-priority tenant first — fps budgets step down toward each
session's floor (a delivery degradation that relieves frame-deadline
pressure), then whole sessions are parked into last-good-tile mode,
which releases their shares and actually returns capacity to the pool —
and **never** takes a tenant below its guaranteed quota floor.
:meth:`restore` walks the same ladder back up once pressure clears.

The grid exports its own :class:`~repro.obs.telemetry.ServiceTelemetry`
(kind ``grid``) so the monitor scrapes queue depth and rejection rate
like any other service, the ``grid-saturated`` rules fire on them, and
the :class:`~repro.core.autoscale.RecruitmentAutoscaler` grows the pool
for the whole grid instead of one session.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.capacity import DEFAULT_TARGET_FPS
from repro.core.cost import tree_cost
from repro.core.session import CollaborativeSession
from repro.errors import (
    InsufficientResources,
    NetworkError,
    ServiceError,
    SessionError,
)
from repro.obs import active as _obs
from repro.obs.vocab import (
    EVENT_ADMIT,
    EVENT_QUEUE,
    EVENT_REJECT,
    EVENT_RESTORE,
    EVENT_SHED,
    SERVICE_GRID,
)
from repro.obs.telemetry import ServiceTelemetry
from repro.obs.tracing import TraceContext
from repro.services.protocol import frame_reject

#: reject reasons carried in the 429 frame (free-form, for humans)
REASON_SATURATED = "grid-saturated: pool full and admission queue full"
REASON_QUEUE_TIMEOUT = "queued past deadline without capacity freeing up"
REASON_DUPLICATE = "duplicate request: session id already queued"


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits and shedding guarantees.

    ``priority`` orders shedding (lower sheds first).  ``max_share`` and
    ``guaranteed_share`` are fractions of the pool's aggregate polygon
    rate: admission never lets the tenant exceed ``max_share`` and
    shedding never pushes it below ``guaranteed_share`` (its quota
    floor).  ``fps_floor_fraction`` bounds per-session degradation: a
    session admitted at 10 fps with the default 0.25 floor is never
    budgeted below 2.5 fps while it stays unparked.
    """

    tenant: str
    priority: int = 0
    max_sessions: int = 2
    max_share: float = 0.75
    guaranteed_share: float = 0.05
    fps_floor_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if not 0.0 < self.max_share <= 1.0:
            raise ValueError("max_share must be in (0, 1]")
        if not 0.0 <= self.guaranteed_share <= self.max_share:
            raise ValueError(
                "guaranteed_share must be in [0, max_share]")
        if not 0.0 < self.fps_floor_fraction <= 1.0:
            raise ValueError("fps_floor_fraction must be in (0, 1]")

    def lease_cap(self, slots: int) -> int:
        """Concurrent-lease cap for a pool of ``slots`` worker slots.

        ``max_share`` applied to a discrete resource: the render farm's
        frame queue charges each outstanding lease against the job's
        tenant, and admission of a new lease stops at this cap while
        other tenants have pending work.  Never below one, so a lone
        tenant always makes progress (the scheduler is work-conserving
        and ignores the cap when nobody else is waiting).
        """
        return max(1, int(self.max_share * max(1, slots)))


@dataclass
class GridSession:
    """One admitted session and its capacity bookkeeping."""

    tenant: str
    session_id: str
    session: CollaborativeSession
    demand_polygons: int
    requested_fps: float
    fps_budget: float
    fps_floor: float
    admitted_at: float
    parked: bool = False

    @property
    def pps(self) -> float:
        """Pool capacity this session consumes (0 while parked).

        Charged at the *admitted* frame rate: the shares stay resident
        on the members whatever rate is currently delivered, so only
        parking (which releases the shares) returns capacity to the
        pool.  ``fps_budget`` below ``requested_fps`` is a delivery
        degradation, not a capacity release.
        """
        return 0.0 if self.parked \
            else self.demand_polygons * self.requested_fps

    @property
    def degraded(self) -> bool:
        return self.parked or self.fps_budget < self.requested_fps


@dataclass(frozen=True)
class AdmissionDecision:
    """One admission-controller outcome, auditable and wire-ready."""

    outcome: str                       # EVENT_ADMIT | EVENT_QUEUE | EVENT_REJECT
    tenant: str
    session_id: str
    time: float
    reason: str = ""
    queue_position: int | None = None
    retry_after: float = 0.0
    grid_session: GridSession | None = None
    #: the 429 frame a front end would put on the wire (rejects only)
    reject_frame: bytes | None = None


@dataclass
class QueuedRequest:
    """A session request parked in the bounded admission FIFO."""

    tenant: str
    session_id: str
    tree: object
    target_fps: float
    demand_polygons: int
    enqueued_at: float
    deadline: float
    on_admit: object = None            # callable(AdmissionDecision) | None
    on_reject: object = None
    trace: TraceContext | None = None  # originating request's trace context


@dataclass(frozen=True)
class ShedAction:
    """One overload-shedding (or restore) step the grid took."""

    time: float
    action: str                        # "degrade" | "park" | "raise" | "unpark"
    tenant: str
    sessions: tuple[str, ...]
    detail: str = ""


class SessionGridManager:
    """Owns a shared render pool; bin-packs tenant sessions onto it."""

    def __init__(self, data_service, members=None, recruiter=None,
                 name: str = "rave-grid",
                 target_fps: float = DEFAULT_TARGET_FPS,
                 queue_capacity: int = 4, queue_timeout: float = 30.0,
                 rejection_window: float = 10.0,
                 default_quota: TenantQuota | None = None,
                 max_pool_size: int | None = None) -> None:
        if queue_capacity < 0:
            raise ServiceError("queue_capacity must be >= 0")
        if queue_timeout <= 0:
            raise ServiceError("queue_timeout must be positive")
        self.data_service = data_service
        self.name = name
        self.recruiter = recruiter
        self.target_fps = target_fps
        self.queue_capacity = queue_capacity
        self.queue_timeout = queue_timeout
        self.rejection_window = rejection_window
        self.max_pool_size = max_pool_size
        self.default_quota = default_quota or TenantQuota(tenant="*")
        self._members: dict[str, object] = {}
        self.failed_members: set[str] = set()
        self._quotas: dict[str, TenantQuota] = {}
        self._sessions: dict[str, GridSession] = {}
        self._queue: deque[QueuedRequest] = deque()
        self._pumping = False
        self.decisions: deque[AdmissionDecision] = deque(maxlen=1024)
        self.shed_actions: list[ShedAction] = []
        self.requests = 0
        self.admissions = 0
        self.rejections = 0
        self.queue_timeouts = 0
        self._recent_rejects: deque[float] = deque(maxlen=1024)
        self.telemetry = ServiceTelemetry(name, host=data_service.host,
                                          kind=SERVICE_GRID)
        self.telemetry.add_collector(self._collect_telemetry)
        for service in members or []:
            self.add_member(service)

    # -- plumbing --------------------------------------------------------------------

    @property
    def network(self):
        return self.data_service.network

    @property
    def host(self) -> str:
        return self.data_service.host

    @property
    def now(self) -> float:
        return self.network.sim.now

    # -- pool membership -------------------------------------------------------------

    @property
    def members(self) -> list:
        return [self._members[n] for n in sorted(self._members)]

    def add_member(self, service) -> None:
        if service.name in self._members:
            raise ServiceError(f"{service.name!r} is already a pool member")
        self._members[service.name] = service
        self.failed_members.discard(service.name)

    def remove_member(self, name: str) -> None:
        self._members.pop(name, None)

    def handle_member_failure(self, name: str) -> None:
        """Mark a member dead pool-wide; sessions recover via :meth:`lend`.

        Each admitted session's own fault-tolerance path
        (:meth:`CollaborativeSession.handle_service_failure`) reclaims
        the dead service's share; this just stops the grid counting the
        corpse's capacity and lending it out again.
        """
        if name in self._members:
            self.failed_members.add(name)

    def live_members(self) -> list:
        network = self.network
        out = []
        for name in sorted(self._members):
            if name in self.failed_members:
                continue
            service = self._members[name]
            try:
                if network.host_is_up(service.host):
                    out.append(service)
            except NetworkError:
                continue
        return out

    def _member_spare_pps(self, service) -> float:
        """Uncommitted polygon rate on one member.

        Each grid session's share is charged at that session's admitted
        frame rate; any polygons committed by non-grid users of the
        member are charged at the grid's base fps.
        """
        grid_polys = 0.0
        grid_pps = 0.0
        for gs in self._sessions.values():
            polys = gs.session.share_polygons(service.name)
            grid_polys += polys
            grid_pps += polys * gs.requested_fps
        foreign = max(0.0, service.committed_polygons() - grid_polys)
        committed = grid_pps + foreign * self.target_fps
        return service.capacity().polygons_per_second - committed

    # -- capacity accounting -----------------------------------------------------------

    def pool_pps(self) -> float:
        """Aggregate polygon rate of the live pool."""
        return sum(s.capacity().polygons_per_second
                   for s in self.live_members())

    def committed_pps(self) -> float:
        return sum(gs.pps for gs in self._sessions.values())

    def spare_pps(self) -> float:
        return self.pool_pps() - self.committed_pps()

    def tenant_pps(self, tenant: str) -> float:
        return sum(gs.pps for gs in self._sessions.values()
                   if gs.tenant == tenant)

    def tenant_sessions(self, tenant: str) -> list[GridSession]:
        return [gs for _, gs in sorted(self._sessions.items())
                if gs.tenant == tenant]

    def utilisation(self) -> float:
        pool = self.pool_pps()
        return self.committed_pps() / pool if pool > 0 else 0.0

    # -- tenants ---------------------------------------------------------------------

    def register_tenant(self, quota: TenantQuota) -> None:
        self._quotas[quota.tenant] = quota

    def quota(self, tenant: str) -> TenantQuota:
        existing = self._quotas.get(tenant)
        if existing is not None:
            return existing
        quota = TenantQuota(
            tenant=tenant, priority=self.default_quota.priority,
            max_sessions=self.default_quota.max_sessions,
            max_share=self.default_quota.max_share,
            guaranteed_share=self.default_quota.guaranteed_share,
            fps_floor_fraction=self.default_quota.fps_floor_fraction)
        self._quotas[tenant] = quota
        return quota

    def tenants(self) -> list[str]:
        return sorted({gs.tenant for gs in self._sessions.values()}
                      | set(self._quotas))

    # -- admission -------------------------------------------------------------------

    def request_session(self, tenant: str, session_id: str, tree,
                        target_fps: float | None = None,
                        on_admit=None, on_reject=None,
                        trace: TraceContext | None = None
                        ) -> AdmissionDecision:
        """The admission controller: admit, queue, or reject.

        ``on_admit``/``on_reject`` are optional callbacks a queued
        request carries, invoked by :meth:`pump` when the wait resolves.
        ``trace`` is the caller's trace context: it rides any reject
        frame, stamps the flight-recorder admission events, and the
        eventual admit records an ``admission`` span under it.
        """
        now = self.now
        self.requests += 1
        if session_id in self._sessions:
            raise SessionError(
                f"session {session_id!r} is already admitted")
        if self.queue_position(session_id) is not None:
            return self._reject(tenant, session_id, now, REASON_DUPLICATE,
                                retry_after=self.queue_timeout, trace=trace)
        quota = self.quota(tenant)
        fps = float(target_fps if target_fps is not None
                    else self.target_fps)
        demand = max(1, tree_cost(tree).polygons)
        blocked = self._quota_violation(quota, demand * fps)
        if blocked:
            return self._reject(tenant, session_id, now, blocked,
                                retry_after=0.0, trace=trace)
        if not self._queue and demand * fps <= self.spare_pps():
            decision = self._try_admit(tenant, session_id, tree, fps,
                                       demand, now, queued_for=0.0,
                                       trace=trace)
            if decision is not None:
                return decision
        if len(self._queue) < self.queue_capacity:
            return self._enqueue(tenant, session_id, tree, fps, demand,
                                 now, on_admit, on_reject, trace=trace)
        return self._reject(tenant, session_id, now, REASON_SATURATED,
                            retry_after=self.queue_timeout, trace=trace)

    def _quota_violation(self, quota: TenantQuota, request_pps: float
                         ) -> str:
        """A quota-level refusal reason, or '' when the request is legal."""
        active = len(self.tenant_sessions(quota.tenant))
        if active >= quota.max_sessions:
            return (f"tenant quota: {quota.tenant} already holds "
                    f"{active}/{quota.max_sessions} sessions")
        pool = self.pool_pps()
        if pool > 0 and (self.tenant_pps(quota.tenant) + request_pps
                         > quota.max_share * pool):
            return (f"tenant quota: request would push {quota.tenant} "
                    f"past its {quota.max_share:.0%} pool share")
        return ""

    def _try_admit(self, tenant: str, session_id: str, tree, fps: float,
                   demand: int, now: float, queued_for: float,
                   trace: TraceContext | None = None
                   ) -> AdmissionDecision | None:
        """Build, connect and place the session; None when placement fails."""
        try:
            self.data_service.session(session_id)
        except (ServiceError, KeyError):
            self.data_service.create_session(session_id, tree)
        session = CollaborativeSession(
            self.data_service, session_id, target_fps=fps, pool=self)
        chosen = self._choose_members(demand * fps)
        try:
            for service in chosen:
                session.connect(service)
            session.place_dataset()
        except (InsufficientResources, ServiceError, NetworkError):
            for service in list(session.render_services):
                try:
                    session.disconnect(service)
                except (ServiceError, NetworkError):
                    pass
            return None
        quota = self.quota(tenant)
        gs = GridSession(
            tenant=tenant, session_id=session_id, session=session,
            demand_polygons=demand, requested_fps=fps, fps_budget=fps,
            fps_floor=fps * quota.fps_floor_fraction, admitted_at=now)
        self._sessions[session_id] = gs
        self.admissions += 1
        decision = AdmissionDecision(
            outcome=EVENT_ADMIT, tenant=tenant, session_id=session_id,
            time=now, grid_session=gs,
            reason=f"admitted onto {[s.name for s in chosen]}")
        self.decisions.append(decision)
        obs = _obs()
        if obs.enabled:
            obs.recorder.note(
                EVENT_ADMIT, time=now,
                detail=f"{tenant}/{session_id}: {demand} polygons at "
                       f"{fps:g} fps onto {[s.name for s in chosen]} "
                       f"(waited {queued_for:g}s)",
                trace=trace.trace_id if trace else "")
            if trace is not None:
                obs.tracer.record(
                    "admission", now - queued_for, now,
                    service=self.name, session=session_id, tenant=tenant,
                    trace=trace.trace_id)
        self.telemetry.registry.histogram(
            "rave_queue_wait_seconds",
            "admission-queue wait before admit").observe(queued_for)
        return decision

    def _choose_members(self, request_pps: float) -> list:
        """Bin-pack: the fewest most-spare members that cover the demand."""
        ranked = sorted(self.live_members(),
                        key=lambda s: (-self._member_spare_pps(s), s.name))
        chosen, covered = [], 0.0
        for service in ranked:
            chosen.append(service)
            covered += max(0.0, self._member_spare_pps(service))
            if covered >= request_pps:
                break
        return chosen

    def _enqueue(self, tenant: str, session_id: str, tree, fps: float,
                 demand: int, now: float, on_admit, on_reject,
                 trace: TraceContext | None = None
                 ) -> AdmissionDecision:
        entry = QueuedRequest(
            tenant=tenant, session_id=session_id, tree=tree,
            target_fps=fps, demand_polygons=demand, enqueued_at=now,
            deadline=now + self.queue_timeout, on_admit=on_admit,
            on_reject=on_reject, trace=trace)
        self._queue.append(entry)
        # the deadline is enforced by the simulated clock itself, not by
        # the next unrelated admission event: a daemon wake-up at the
        # deadline converts a still-queued entry into its 429
        self.network.sim.schedule_at(
            entry.deadline, lambda: self._deadline_tick(entry), daemon=True)
        position = len(self._queue)
        decision = AdmissionDecision(
            outcome=EVENT_QUEUE, tenant=tenant, session_id=session_id,
            time=now, queue_position=position,
            retry_after=self.queue_timeout,
            reason=f"grid full; queued at position {position}")
        self.decisions.append(decision)
        obs = _obs()
        if obs.enabled:
            obs.recorder.note(
                EVENT_QUEUE, time=now,
                detail=f"{tenant}/{session_id}: position {position}, "
                       f"deadline {entry.deadline:g}s",
                trace=trace.trace_id if trace else "")
        return decision

    def _reject(self, tenant: str, session_id: str, now: float,
                reason: str, retry_after: float,
                trace: TraceContext | None = None) -> AdmissionDecision:
        frame = frame_reject(reason, retry_after, tenant=tenant,
                             session_id=session_id,
                             queue_depth=len(self._queue), trace=trace)
        self.rejections += 1
        self._recent_rejects.append(now)
        decision = AdmissionDecision(
            outcome=EVENT_REJECT, tenant=tenant, session_id=session_id,
            time=now, reason=reason, retry_after=retry_after,
            reject_frame=frame)
        self.decisions.append(decision)
        obs = _obs()
        if obs.enabled:
            obs.recorder.note(
                EVENT_REJECT, time=now,
                detail=f"{tenant}/{session_id}: {reason} "
                       f"(retry after {retry_after:g}s)",
                trace=trace.trace_id if trace else "")
        return decision

    # -- the queue -------------------------------------------------------------------

    def queue_depth(self) -> int:
        return len(self._queue)

    def queue_position(self, session_id: str) -> int | None:
        """1-based position in the FIFO, or None when not queued."""
        for index, entry in enumerate(self._queue):
            if entry.session_id == session_id:
                return index + 1
        return None

    def _deadline_tick(self, entry: QueuedRequest) -> None:
        """Daemon wake-up at a queued entry's deadline (see :meth:`_enqueue`).

        Runs a pump pass only if the entry is still waiting, so the 429
        (and its ``on_reject``) fires *at* the deadline; entries already
        admitted or rejected make this a no-op.
        """
        if entry in self._queue:
            self.pump()

    def pump(self, now: float | None = None) -> list[AdmissionDecision]:
        """Expire deadlined entries, then admit head-of-line while it fits.

        FIFO order is strict: a small request never skips past a large
        head-of-line request (no starvation of big tenants).  Returns
        the decisions resolved this pass.

        Pumping is non-reentrant: an ``on_reject``/``on_admit`` callback
        that pumps again (e.g. a thin client retrying synchronously)
        gets an empty pass back instead of racing the outer pass's
        snapshot of the queue — the outer pump already drains
        everything drainable.
        """
        now = self.now if now is None else now
        if self._pumping:
            return []
        self._pumping = True
        try:
            return self._pump_locked(now)
        finally:
            self._pumping = False

    def _pump_locked(self, now: float) -> list[AdmissionDecision]:
        resolved: list[AdmissionDecision] = []
        for entry in [e for e in self._queue if e.deadline <= now]:
            self._queue.remove(entry)
            self.queue_timeouts += 1
            decision = self._reject(entry.tenant, entry.session_id, now,
                                    REASON_QUEUE_TIMEOUT,
                                    retry_after=self.queue_timeout,
                                    trace=entry.trace)
            if entry.on_reject is not None:
                entry.on_reject(decision)
            resolved.append(decision)
        while self._queue:
            head = self._queue[0]
            if head.session_id in self._sessions:
                # a duplicate of an already-admitted session must never
                # admit again (it would overwrite the live GridSession
                # and leak its shares) — resolve it as an explicit 429
                self._queue.popleft()
                decision = self._reject(head.tenant, head.session_id,
                                        now, REASON_DUPLICATE,
                                        retry_after=0.0, trace=head.trace)
                if head.on_reject is not None:
                    head.on_reject(decision)
                resolved.append(decision)
                continue
            quota = self.quota(head.tenant)
            request_pps = head.demand_polygons * head.target_fps
            blocked = self._quota_violation(quota, request_pps)
            if blocked:
                self._queue.popleft()
                decision = self._reject(head.tenant, head.session_id,
                                        now, blocked, retry_after=0.0,
                                        trace=head.trace)
                if head.on_reject is not None:
                    head.on_reject(decision)
                resolved.append(decision)
                continue
            if request_pps > self.spare_pps():
                break
            decision = self._try_admit(
                head.tenant, head.session_id, head.tree, head.target_fps,
                head.demand_polygons, now,
                queued_for=now - head.enqueued_at, trace=head.trace)
            if decision is None:
                break
            self._queue.popleft()
            if head.on_admit is not None:
                head.on_admit(decision)
            resolved.append(decision)
        return resolved

    # -- session lifecycle -------------------------------------------------------------

    def session(self, session_id: str) -> GridSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise SessionError(
                f"session {session_id!r} is not admitted") from None

    def sessions(self) -> list[GridSession]:
        return [self._sessions[s] for s in sorted(self._sessions)]

    def release_session(self, session_id: str) -> list[AdmissionDecision]:
        """End an admitted session and drain the queue into its capacity."""
        gs = self.session(session_id)
        for service in list(gs.session.render_services):
            try:
                gs.session.disconnect(service)
            except (ServiceError, NetworkError):
                pass
        del self._sessions[session_id]
        return self.pump()

    def lend(self, session: CollaborativeSession) -> list:
        """Attach spare pool members to a session (its recovery path).

        Called by :meth:`CollaborativeSession.recruit_more` when the
        session is pool-owned: instead of a UDDI scan, the shared pool
        lends out members the session is not yet using — preferring
        spare capacity, skipping failed members and down hosts.
        """
        attached = {s.name for s in session.render_services}
        candidates = [
            s for s in self.live_members()
            if s.name not in attached
            and s.name not in session.failed_services
        ]
        candidates.sort(key=lambda s: (-self._member_spare_pps(s), s.name))
        lent = []
        for service in candidates:
            if lent and self._member_spare_pps(service) <= 0:
                break
            try:
                session.connect(service)
            except (NetworkError, ServiceError):
                continue
            session._narrow(service, set())
            lent.append(service)
        return lent

    # -- overload shedding -------------------------------------------------------------

    def _tenant_floor_pps(self, tenant: str) -> float:
        return self.quota(tenant).guaranteed_share * self.pool_pps()

    def shed(self, now: float | None = None) -> ShedAction | None:
        """One graceful shedding step; None when nothing can shed.

        Tenants shed in priority order (lowest first) and only while
        above their guaranteed quota floor.  A step first halves the
        tenant's fps budgets (clamped at each session's fps floor) —
        a delivery degradation that relieves frame-deadline pressure;
        once every session sits at its fps floor, sessions are parked
        one at a time into last-good-tile mode — their shares released
        back to the pool, which is what actually frees capacity — as
        long as the tenant's remaining live load stays at or above its
        floor.
        """
        now = self.now if now is None else now
        order = sorted({gs.tenant for gs in self._sessions.values()},
                       key=lambda t: (self.quota(t).priority, t))
        for tenant in order:
            action = self._shed_tenant(tenant, now)
            if action is not None:
                return action
        return None

    def _shed_tenant(self, tenant: str, now: float) -> ShedAction | None:
        floor = self._tenant_floor_pps(tenant)
        current = self.tenant_pps(tenant)
        if current <= floor or current <= 0:
            return None
        live = [gs for gs in self.tenant_sessions(tenant) if not gs.parked]
        # step 1: halve fps budgets, clamped at per-session floors
        changed = []
        for gs in live:
            new_budget = max(gs.fps_floor, gs.fps_budget * 0.5)
            if new_budget < gs.fps_budget:
                gs.fps_budget = new_budget
                changed.append(gs.session_id)
        if changed:
            budgets = ", ".join(
                f"{gs.session_id}@{gs.fps_budget:g}fps" for gs in live)
            return self._record_shed(
                "degrade", tenant, changed, now,
                f"fps budgets halved toward floor ({budgets})")
        # step 2: park a whole session, floor permitting
        for gs in live:
            if current - gs.pps >= floor:
                self._park(gs)
                return self._record_shed(
                    "park", tenant, [gs.session_id], now,
                    "last-good-tile mode; shares released to the pool")
        return None

    def shed_to_fit(self, now: float | None = None) -> list[ShedAction]:
        """Shed until committed load fits the (possibly shrunken) pool."""
        now = self.now if now is None else now
        actions: list[ShedAction] = []
        while self.committed_pps() > self.pool_pps():
            action = self.shed(now)
            if action is None:
                break
            actions.append(action)
        return actions

    def restore(self, now: float | None = None) -> ShedAction | None:
        """One recovery step: unpark first, then raise fps budgets.

        Highest-priority tenants recover first.  Unparking re-occupies
        pool capacity, so it is bounded by the current spare; raising a
        budget only restores the delivery rate the session was admitted
        at, which its resident shares already pay for, so the raise
        pass runs whenever the overload has cleared.
        """
        now = self.now if now is None else now
        spare = self.spare_pps()
        order = sorted({gs.tenant for gs in self._sessions.values()},
                       key=lambda t: (-self.quota(t).priority, t))
        for tenant in order:
            if spare <= 0:
                break
            for gs in self.tenant_sessions(tenant):
                if gs.parked and \
                        gs.demand_polygons * gs.requested_fps <= spare:
                    self._unpark(gs)
                    if gs.parked:
                        continue
                    return self._record_restore(
                        "unpark", tenant, [gs.session_id], now,
                        "shares re-placed onto the pool")
        for tenant in order:
            changed = []
            for gs in self.tenant_sessions(tenant):
                if gs.parked or gs.fps_budget >= gs.requested_fps:
                    continue
                gs.fps_budget = min(gs.requested_fps, gs.fps_budget * 2.0)
                changed.append(gs.session_id)
            if changed:
                return self._record_restore(
                    "raise", tenant, changed, now,
                    "fps budgets raised toward requested rates")
        return None

    def _park(self, gs: GridSession) -> None:
        gs.parked = True
        session = gs.session
        for service in list(session.render_services):
            attachment = session.attachment(service)
            attachment.share = set()
            try:
                session._narrow(service, set())
            except (ServiceError, NetworkError):
                continue

    def _unpark(self, gs: GridSession) -> None:
        gs.parked = False
        # the members it was parked on may have filled up meanwhile —
        # offer the session every spare member before re-placing
        self.lend(gs.session)
        try:
            gs.session.place_dataset()
        except (InsufficientResources, ServiceError, NetworkError):
            gs.parked = True

    def _record_shed(self, action: str, tenant: str, sessions, now: float,
                     detail: str) -> ShedAction:
        record = ShedAction(time=now, action=action, tenant=tenant,
                            sessions=tuple(sessions), detail=detail)
        self.shed_actions.append(record)
        obs = _obs()
        if obs.enabled:
            obs.recorder.note(
                EVENT_SHED, time=now,
                detail=f"{tenant}: {action} {list(record.sessions)} "
                       f"— {detail}")
        return record

    def _record_restore(self, action: str, tenant: str, sessions,
                        now: float, detail: str) -> ShedAction:
        record = ShedAction(time=now, action=action, tenant=tenant,
                            sessions=tuple(sessions), detail=detail)
        self.shed_actions.append(record)
        obs = _obs()
        if obs.enabled:
            obs.recorder.note(
                EVENT_RESTORE, time=now,
                detail=f"{tenant}: {action} {list(record.sessions)} "
                       f"— {detail}")
        return record

    # -- pool scaling ----------------------------------------------------------------

    def grow(self, count: int = 1) -> list:
        """Recruit new members into the pool via UDDI (the autoscaler path)."""
        if self.recruiter is None:
            return []
        if (self.max_pool_size is not None
                and len(self._members) >= self.max_pool_size):
            return []
        result = self.recruiter.recruit(
            exclude=set(self._members) | self.failed_members)
        network = self.network
        added = []
        for service in result.services:
            if len(added) >= count:
                break
            if service.name in self._members:
                continue
            try:
                if not network.host_is_up(service.host):
                    continue
            except NetworkError:
                continue
            self.add_member(service)
            added.append(service)
        return added

    def release_idle(self, min_members: int = 1) -> list[str]:
        """Drop members no session touches (scale-in), queue permitting."""
        if self._queue:
            return []
        in_use: set[str] = set()
        for gs in self._sessions.values():
            in_use |= {s.name for s in gs.session.render_services}
        released = []
        for name in sorted(self._members):
            if len(self._members) - len(released) <= min_members:
                break
            if name in in_use or name in self.failed_members:
                continue
            released.append(name)
        for name in released:
            del self._members[name]
        return released

    # -- telemetry -------------------------------------------------------------------

    def rejection_rate(self, now: float | None = None) -> float:
        """Rejects per second over the trailing window (recovery-visible)."""
        now = self.now if now is None else now
        cutoff = now - self.rejection_window
        recent = sum(1 for t in self._recent_rejects if t > cutoff)
        return recent / self.rejection_window

    def _collect_telemetry(self, registry) -> None:
        now = self.now
        registry.gauge("rave_queue_depth",
                       "admission queue depth").set(len(self._queue))
        registry.gauge("rave_admission_rejection_rate",
                       "rejects per second over the trailing window"
                       ).set(self.rejection_rate(now))
        registry.gauge("rave_admission_sessions",
                       "admitted sessions").set(len(self._sessions))
        registry.gauge("rave_admission_pool_utilisation",
                       "committed fraction of the pool's polygon rate"
                       ).set(self.utilisation())
        counts: dict[str, int] = {}
        for gs in self._sessions.values():
            counts[gs.tenant] = counts.get(gs.tenant, 0) + 1
        for tenant in sorted(counts):
            registry.gauge("rave_tenant_sessions",
                           "admitted sessions per tenant",
                           tenant=tenant).set(counts[tenant])

    def describe(self) -> dict:
        """JSON-serialisable admission state (dashboard / tests)."""
        return {
            "members": sorted(self._members),
            "failed_members": sorted(self.failed_members),
            "pool_pps": self.pool_pps(),
            "committed_pps": self.committed_pps(),
            "utilisation": self.utilisation(),
            "queue": [
                {"tenant": e.tenant, "session": e.session_id,
                 "deadline": e.deadline}
                for e in self._queue
            ],
            "sessions": [
                {"tenant": gs.tenant, "session": gs.session_id,
                 "fps_budget": gs.fps_budget, "parked": gs.parked,
                 "degraded": gs.degraded}
                for gs in self.sessions()
            ],
            "requests": self.requests,
            "admissions": self.admissions,
            "rejections": self.rejections,
            "queue_timeouts": self.queue_timeouts,
        }

    def __repr__(self) -> str:
        return (f"SessionGridManager(members={len(self._members)}, "
                f"sessions={len(self._sessions)}, "
                f"queue={len(self._queue)}, "
                f"rejections={self.rejections})")


__all__ = [
    "TenantQuota",
    "GridSession",
    "AdmissionDecision",
    "QueuedRequest",
    "ShedAction",
    "SessionGridManager",
    "REASON_SATURATED",
    "REASON_QUEUE_TIMEOUT",
    "REASON_DUPLICATE",
]
