"""Failure detection: heartbeat leases over the simulated clock.

The paper's migration policy assumes every render service keeps reporting
its load; a crashed service simply goes silent and its scene share is never
re-rendered.  This module closes that gap with a lease-based failure
detector in the style of grid membership services:

- every watched service holds a **lease** renewed by heartbeats;
- a service whose lease is older than ``suspect_after`` becomes
  **suspected** (it may just be a slow link);
- older than ``dead_after`` and it is declared **dead** — the recovery
  callbacks fire exactly once per death;
- a heartbeat from a suspected or dead service **recovers** it (the host
  rebooted, the partition healed).

:class:`HeartbeatMonitor` evaluates transitions on demand (:meth:`poll`)
or on a recurring simulator event (:meth:`start`).  :class:`HeartbeatSource`
emits a service's heartbeats across the simulated network, so crashes,
partitions and downed links silence them exactly as they would in a real
deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

from repro.errors import NetworkError, ServiceError
from repro.obs import active as _obs
from repro.obs.vocab import EVENT_LEASE_TRANSITION

#: lease states
ALIVE = "alive"
SUSPECTED = "suspected"
DEAD = "dead"


@dataclass
class Lease:
    """Liveness bookkeeping for one watched service."""

    name: str
    last_beat: float
    state: str = ALIVE
    beats: int = 0
    deaths: int = 0

    def age(self, now: float) -> float:
        return now - self.last_beat


class HeartbeatMonitor:
    """Lease-based failure detector for attached render services.

    Callbacks receive the service name and the monitor:
    ``on_suspect(name)``, ``on_dead(name)``, ``on_recover(name)``.  Each
    fires once per transition; a dead service that heartbeats again fires
    ``on_recover`` and returns to ``alive``.
    """

    def __init__(self, sim, suspect_after: float = 1.5,
                 dead_after: float = 4.0) -> None:
        if suspect_after <= 0 or dead_after <= suspect_after:
            raise ServiceError(
                "need 0 < suspect_after < dead_after")
        self.sim = sim
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        self._leases: dict[str, Lease] = {}
        self.on_suspect: list[Callable[[str], None]] = []
        self.on_dead: list[Callable[[str], None]] = []
        self.on_recover: list[Callable[[str], None]] = []
        self._poll_handle = None
        self.polls = 0

    # -- membership -------------------------------------------------------------

    def watch(self, name: str) -> Lease:
        """Start tracking a service; its lease begins renewed."""
        if name in self._leases:
            return self._leases[name]
        lease = Lease(name=name, last_beat=self.sim.now)
        self._leases[name] = lease
        return lease

    def unwatch(self, name: str) -> None:
        self._leases.pop(name, None)

    def lease(self, name: str) -> Lease:
        try:
            return self._leases[name]
        except KeyError:
            raise ServiceError(f"{name!r} is not watched") from None

    def watched(self) -> list[str]:
        return sorted(self._leases)

    def is_watched(self, name: str) -> bool:
        return name in self._leases

    # -- heartbeats & transitions -----------------------------------------------

    def beat(self, name: str) -> None:
        """Renew a lease; recovers a suspected/dead service."""
        lease = self.lease(name)
        lease.last_beat = self.sim.now
        lease.beats += 1
        if lease.state != ALIVE:
            was = lease.state
            lease.state = ALIVE
            if was in (SUSPECTED, DEAD):
                obs = _obs()
                if obs.enabled:
                    obs.metrics.counter(
                        "rave_health_transitions_total",
                        "lease state transitions", state="recovered").inc()
                    obs.recorder.note(
                        EVENT_LEASE_TRANSITION, time=self.sim.now,
                        detail=f"{name}: {was} -> alive (heartbeat)")
                for cb in self.on_recover:
                    cb(name)

    def state(self, name: str) -> str:
        return self.lease(name).state

    def alive(self, name: str) -> bool:
        return self.lease(name).state == ALIVE

    def dead_services(self) -> list[str]:
        return sorted(name for name, lease in self._leases.items()
                      if lease.state == DEAD)

    def live_services(self) -> list[str]:
        return sorted(name for name, lease in self._leases.items()
                      if lease.state != DEAD)

    def poll(self) -> list[tuple[str, str]]:
        """Evaluate every lease now; returns ``(name, new_state)`` changes."""
        self.polls += 1
        now = self.sim.now
        obs = _obs()
        changes: list[tuple[str, str]] = []
        for lease in list(self._leases.values()):
            age = lease.age(now)
            if lease.state == ALIVE and age >= self.suspect_after:
                lease.state = SUSPECTED
                changes.append((lease.name, SUSPECTED))
                if obs.enabled:
                    obs.recorder.note(
                        EVENT_LEASE_TRANSITION, time=now,
                        detail=f"{lease.name}: alive -> suspected "
                               f"(lease age {age:.2f}s)")
                for cb in self.on_suspect:
                    cb(lease.name)
            if lease.state == SUSPECTED and age >= self.dead_after:
                lease.state = DEAD
                lease.deaths += 1
                changes.append((lease.name, DEAD))
                if obs.enabled:
                    obs.recorder.note(
                        EVENT_LEASE_TRANSITION, time=now,
                        detail=f"{lease.name}: suspected -> dead "
                               f"(lease age {age:.2f}s)")
                for cb in self.on_dead:
                    cb(lease.name)
        if changes:
            if obs.enabled:
                for _, state in changes:
                    obs.metrics.counter("rave_health_transitions_total",
                                        "lease state transitions",
                                        state=state).inc()
                # Dump AFTER the callbacks: the recovery actions the death
                # triggered are in the ring, so the post-mortem shows both
                # the failure and the response.
                for name, state in changes:
                    if state == DEAD:
                        obs.recorder.dump(f"heartbeat-death:{name}",
                                          time=now)
        return changes

    # -- recurring evaluation ----------------------------------------------------

    def start(self, period: float = 0.5) -> None:
        """Poll on a recurring simulator event every ``period`` seconds."""
        if period <= 0:
            raise ServiceError("poll period must be positive")
        if self._poll_handle is not None:
            return

        def tick() -> None:
            self.poll()
            self._poll_handle = self.sim.schedule(period, tick, daemon=True)

        self._poll_handle = self.sim.schedule(period, tick, daemon=True)

    def stop(self) -> None:
        if self._poll_handle is not None:
            self._poll_handle.cancel()
            self._poll_handle = None

    def __repr__(self) -> str:
        by_state: dict[str, int] = {}
        for lease in self._leases.values():
            by_state[lease.state] = by_state.get(lease.state, 0) + 1
        return f"HeartbeatMonitor(watched={len(self._leases)}, {by_state})"


@dataclass
class HeartbeatSource:
    """Emits one service's heartbeats across the simulated network.

    Every ``interval`` seconds a small beat message travels from the
    service's host to the monitor's host; if the host is down or no route
    exists, the beat is silently lost — which is exactly the signal the
    monitor's leases turn into suspicion and death.
    """

    monitor: HeartbeatMonitor
    network: object            # repro.network.simnet.Network
    name: str
    host: str
    monitor_host: str
    interval: float = 0.5
    beat_bytes: int = 64
    beats_sent: int = 0
    beats_lost: int = 0
    _stopped: bool = field(default=False, repr=False)

    def start(self) -> HeartbeatSource:
        self.monitor.watch(self.name)
        # a restarted source must beat again: stop() parks the tick loop
        # by raising this flag, so re-arming without clearing it would
        # schedule a loop that exits on its first tick forever
        self._stopped = False

        def tick() -> None:
            if self._stopped:
                return
            self._emit()
            self.network.sim.schedule(self.interval, tick, daemon=True)

        self.network.sim.schedule(self.interval, tick, daemon=True)
        return self

    def _emit(self) -> None:
        try:
            if not self.network.host_is_up(self.host):
                raise NetworkError(f"host {self.host!r} is down")
            delay = self.network.transfer_time(
                self.host, self.monitor_host, self.beat_bytes)
        except NetworkError:
            self.beats_lost += 1
            return
        injector = getattr(self.network, "fault_injector", None)
        if injector is not None and injector.roll_loss(self.host,
                                                       self.monitor_host):
            self.beats_lost += 1
            return
        self.beats_sent += 1
        name = self.name
        self.network.sim.schedule(delay,
                                  lambda: self._deliver(name))

    def _deliver(self, name: str) -> None:
        if self.monitor.is_watched(name):
            self.monitor.beat(name)

    def stop(self) -> None:
        self._stopped = True


__all__ = [
    "ALIVE",
    "SUSPECTED",
    "DEAD",
    "Lease",
    "HeartbeatMonitor",
    "HeartbeatSource",
]
