"""Render-service selection.

"When a client requests a dataset to be rendered, it must select which
render service to use.  The data service interrogates the render service
for its capacity ... If a render service cannot support the entire dataset,
then the data service recruits available render services to assist.
Within our present testbed if insufficient resources are available, the
request is refused with an explanatory error message."  (paper §3.2.5)

:class:`RenderServiceScheduler` implements that decision procedure:
interrogate → place on one service if it fits → otherwise assemble a
multi-service placement → otherwise recruit via UDDI → otherwise refuse
with :class:`~repro.errors.InsufficientResources`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.capacity import (
    CapacityReport,
    DEFAULT_TARGET_FPS,
    interrogate,
)
from repro.core.cost import NodeCost
from repro.errors import InsufficientResources
from repro.obs import active as _obs


@dataclass(frozen=True)
class Assignment:
    """One service's share of a placement."""

    service: object                # RenderService
    polygons: int
    report: CapacityReport


@dataclass
class Placement:
    """The scheduler's answer for one client request."""

    mode: str                      # "single" | "dataset-distributed"
    assignments: list[Assignment] = field(default_factory=list)
    recruited: list[object] = field(default_factory=list)
    interrogation_seconds: float = 0.0

    @property
    def services(self) -> list[object]:
        return [a.service for a in self.assignments]

    @property
    def total_polygons(self) -> int:
        return sum(a.polygons for a in self.assignments)


class RenderServiceScheduler:
    """Capacity-driven placement of a dataset onto render services."""

    def __init__(self, data_service,
                 target_fps: float = DEFAULT_TARGET_FPS,
                 recruiter=None) -> None:
        self.data_service = data_service
        self.target_fps = target_fps
        self.recruiter = recruiter

    def interrogate_all(self, services: list) -> list[CapacityReport]:
        reports = [interrogate(s, self.data_service.host) for s in services]
        obs = _obs()
        if obs.enabled and reports:
            m = obs.metrics
            m.counter("rave_scheduler_interrogations_total",
                      "capacity interrogations issued").inc(len(reports))
            hist = m.histogram("rave_scheduler_interrogation_seconds",
                               "per-service interrogation round trip")
            for report in reports:
                hist.observe(report.elapsed_seconds)
        return reports

    def place(self, cost: NodeCost, services: list) -> Placement:
        """Place a dataset of the given cost onto the service pool.

        Raises :class:`InsufficientResources` (the paper's refusal path)
        when even recruitment cannot cover the demand.
        """
        obs = _obs()
        try:
            placement = self._place(cost, services)
        except InsufficientResources:
            if obs.enabled:
                obs.metrics.counter("rave_scheduler_refusals_total",
                                    "requests refused for capacity").inc()
            raise
        if obs.enabled:
            m = obs.metrics
            m.counter("rave_scheduler_placements_total",
                      "successful placements", mode=placement.mode).inc()
            if placement.recruited:
                m.counter("rave_scheduler_recruited_total",
                          "services recruited during placement"
                          ).inc(len(placement.recruited))
            m.histogram("rave_scheduler_placement_interrogation_seconds",
                        "total interrogation time per placement"
                        ).observe(placement.interrogation_seconds)
        return placement

    def _place(self, cost: NodeCost, services: list) -> Placement:
        if cost.polygons <= 0:
            raise ValueError("placement needs a positive polygon cost")
        services = list(services)
        reports = self.interrogate_all(services)
        interrogation = sum(r.elapsed_seconds for r in reports)

        # 1. a single service that fits the whole dataset — prefer the one
        #    with the *least* sufficient headroom (best-fit keeps the big
        #    machines free for datasets that need them)
        fitting = [(s, r) for s, r in zip(services, reports)
                   if r.headroom(self.target_fps) >= cost.polygons
                   and self._supports(r, cost)]
        if fitting:
            service, report = min(
                fitting, key=lambda sr: sr[1].headroom(self.target_fps))
            return Placement(
                mode="single",
                assignments=[Assignment(service=service,
                                        polygons=cost.polygons,
                                        report=report)],
                interrogation_seconds=interrogation)

        # 2. split across services by headroom (largest first)
        placement = self._try_distribute(cost, services, reports,
                                         interrogation)
        if placement is not None:
            return placement

        # 3. recruit unconnected services via UDDI
        recruited: list = []
        if self.recruiter is not None:
            result = self.recruiter.recruit(
                exclude={getattr(s, "name", None) for s in services})
            recruited = list(result.services)
            if recruited:
                services = services + recruited
                new_reports = self.interrogate_all(recruited)
                reports = reports + new_reports
                interrogation += sum(r.elapsed_seconds for r in new_reports)
                placement = self._try_distribute(cost, services, reports,
                                                 interrogation)
                if placement is not None:
                    placement.recruited = recruited
                    return placement

        available = sum(r.headroom(self.target_fps) for r in reports)
        raise InsufficientResources(
            f"dataset of {cost.polygons} polygons needs more rendering "
            f"capacity than the {len(services)} available render service(s) "
            f"provide at {self.target_fps:g} fps "
            f"(total headroom {available:.0f} polygons"
            f"{', recruitment attempted' if self.recruiter else ''})",
            required=float(cost.polygons), available=available)

    # -- helpers --------------------------------------------------------------------

    def _supports(self, report: CapacityReport, cost: NodeCost) -> bool:
        if cost.voxels and not report.capacity.volume_support:
            return False
        if cost.texture_bytes > report.capacity.texture_memory_bytes:
            return False
        return True

    def _try_distribute(self, cost: NodeCost, services: list,
                        reports: list[CapacityReport],
                        interrogation: float) -> Placement | None:
        usable = [(s, r) for s, r in zip(services, reports)
                  if self._supports(r, cost)
                  and r.headroom(self.target_fps) > 0]
        usable.sort(key=lambda sr: -sr[1].headroom(self.target_fps))
        total = sum(r.headroom(self.target_fps) for _, r in usable)
        if total < cost.polygons or not usable:
            return None
        remaining = cost.polygons
        assignments: list[Assignment] = []
        for service, report in usable:
            if remaining <= 0:
                break
            share = int(min(remaining, report.headroom(self.target_fps)))
            if share <= 0:
                continue
            assignments.append(Assignment(service=service, polygons=share,
                                          report=report))
            remaining -= share
        if remaining > 0:
            return None
        return Placement(mode="dataset-distributed", assignments=assignments,
                         interrogation_seconds=interrogation)
