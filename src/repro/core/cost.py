"""Node and tile cost metrics.

"We will use metrics to define ... how much data are contained in a given
set of nodes (in terms of texture memory and number of
polygons/voxels/points).  We can then select an appropriate set of nodes or
tiles to move in order to load balance the system."  (paper §3.2.7)

:class:`NodeCost` is that vector; costs add, compare against a
:class:`~repro.core.capacity.RenderCapacity` budget, and normalise to a
scalar *render-load* (seconds of work per frame on a unit-rate machine) for
the migration knapsack.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.capacity import DEFAULT_TARGET_FPS, RenderCapacity
from repro.scenegraph.nodes import SceneNode
from repro.scenegraph.tree import SceneTree
from repro.render.framebuffer import Tile


@dataclass(frozen=True)
class NodeCost:
    """Resource demand of a node set."""

    polygons: int = 0
    points: int = 0
    voxels: int = 0
    texture_bytes: int = 0
    payload_bytes: int = 0

    def __add__(self, other: NodeCost) -> NodeCost:
        return NodeCost(
            polygons=self.polygons + other.polygons,
            points=self.points + other.points,
            voxels=self.voxels + other.voxels,
            texture_bytes=self.texture_bytes + other.texture_bytes,
            payload_bytes=self.payload_bytes + other.payload_bytes,
        )

    @property
    def is_empty(self) -> bool:
        return (self.polygons == 0 and self.points == 0 and self.voxels == 0
                and self.texture_bytes == 0)

    def render_load(self, capacity: RenderCapacity) -> float:
        """Seconds per frame this cost demands of the given capacity."""
        load = 0.0
        if self.polygons:
            if capacity.polygons_per_second <= 0:
                return float("inf")
            load += self.polygons / capacity.polygons_per_second
        if self.points:
            if capacity.points_per_second <= 0:
                return float("inf")
            load += self.points / capacity.points_per_second
        if self.voxels:
            if capacity.voxels_per_second <= 0:
                return float("inf")
            load += self.voxels / capacity.voxels_per_second
        return load

    def fits(self, capacity: RenderCapacity,
             target_fps: float = DEFAULT_TARGET_FPS,
             committed: "NodeCost | None" = None) -> bool:
        """Can this cost (plus already-committed work) sustain target fps?"""
        total = self if committed is None else self + committed
        if total.texture_bytes > capacity.texture_memory_bytes:
            return False
        if total.voxels and not capacity.volume_support:
            return False
        return total.render_load(capacity) <= 1.0 / target_fps


def node_cost(node: SceneNode) -> NodeCost:
    """Cost of a single node (not its children)."""
    # Texture demand: a mesh's bound texture image, or — for volumes —
    # the voxel payload resident as a 3-D texture on hardware volume
    # renderers.
    texture = node.texture_bytes
    if node.n_voxels:
        texture = node.payload_bytes
    return NodeCost(
        polygons=node.n_polygons,
        points=node.n_points,
        voxels=node.n_voxels,
        texture_bytes=texture,
        payload_bytes=node.payload_bytes,
    )


def subtree_cost(node: SceneNode) -> NodeCost:
    """Aggregate cost of a node and everything below it."""
    total = NodeCost()
    for sub in node.iter_subtree():
        total = total + node_cost(sub)
    return total


def tree_cost(tree: SceneTree) -> NodeCost:
    return subtree_cost(tree.root)


def tile_cost(tile: Tile, full_width: int, full_height: int,
              scene: NodeCost) -> NodeCost:
    """Approximate cost of rendering one tile of the scene.

    Geometry processing is not reduced by tiling (every triangle is still
    transformed), but fill work scales with tile area; RAVE's tile
    assistance trades *fill + framebuffer transfer* for *duplicate geometry
    work*.  We charge the full geometry plus an area-proportional share of
    payload (the transferred framebuffer).
    """
    if full_width <= 0 or full_height <= 0:
        raise ValueError("target dimensions must be positive")
    area_fraction = tile.pixels / (full_width * full_height)
    return NodeCost(
        polygons=scene.polygons,
        points=scene.points,
        voxels=scene.voxels,
        texture_bytes=scene.texture_bytes,
        payload_bytes=int(scene.payload_bytes * area_fraction),
    )
