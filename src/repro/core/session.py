"""The collaborative-session orchestrator.

Ties the pieces into the paper's workflow: a data service hosts the scene;
render services connect (or are recruited via UDDI); a scheduler places the
dataset; the distributors split work; render services draw; the compositor
merges; the migrator rebalances as load changes.  This is the top-level
object the examples and benchmarks drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.capacity import DEFAULT_TARGET_FPS
from repro.core.cost import tree_cost
from repro.core.distribution import (
    DatasetDistributor,
    DistributionPlan,
    FramebufferDistributor,
    TilePlan,
)
from repro.core.migration import WorkloadMigrator
from repro.core.scheduler import Placement, RenderServiceScheduler
from repro.errors import ServiceError, SessionError
from repro.render.camera import Camera
from repro.render.compositor import assemble_tiles, depth_composite
from repro.render.framebuffer import FrameBuffer
from repro.scenegraph.nodes import CameraNode


@dataclass
class ServiceAttachment:
    """A render service participating in this session."""

    service: object                    # RenderService
    render_session_id: str
    bootstrap_seconds: float
    share: set[int] = field(default_factory=set)


class CollaborativeSession:
    """One shared visualization session across the grid."""

    def __init__(self, data_service, session_id: str,
                 target_fps: float = DEFAULT_TARGET_FPS,
                 recruiter=None,
                 distributor: DatasetDistributor | None = None,
                 migrator: WorkloadMigrator | None = None) -> None:
        self.data_service = data_service
        self.session_id = session_id
        self.target_fps = target_fps
        self.recruiter = recruiter
        self.scheduler = RenderServiceScheduler(
            data_service, target_fps=target_fps, recruiter=recruiter)
        self.distributor = distributor or DatasetDistributor()
        self.tile_distributor = FramebufferDistributor()
        self.migrator = migrator or WorkloadMigrator(target_fps=target_fps)
        self._attachments: dict[str, ServiceAttachment] = {}
        self.placement: Placement | None = None

    # -- introspection -----------------------------------------------------------

    @property
    def master_tree(self):
        return self.data_service.session(self.session_id).tree

    @property
    def render_services(self) -> list:
        return [a.service for a in self._attachments.values()]

    def attachment(self, service) -> ServiceAttachment:
        name = getattr(service, "name", service)
        try:
            return self._attachments[name]
        except KeyError:
            raise SessionError(
                f"render service {name!r} is not attached") from None

    def share_of(self, service) -> set[int]:
        return self.attachment(service).share

    # -- membership ------------------------------------------------------------------

    def connect(self, render_service, subset_ids: set[int] | None = None,
                introspective: bool = True) -> ServiceAttachment:
        """Attach a render service (bootstrapping its scene copy)."""
        if render_service.name in self._attachments:
            raise SessionError(
                f"{render_service.name!r} already attached")
        rsession, timing = render_service.create_render_session(
            self.data_service, self.session_id, subset_ids=subset_ids,
            introspective=introspective)
        attachment = ServiceAttachment(
            service=render_service,
            render_session_id=rsession.render_session_id,
            bootstrap_seconds=timing.total_seconds,
            share=set(subset_ids) if subset_ids is not None else set())
        self._attachments[render_service.name] = attachment
        return attachment

    def disconnect(self, render_service) -> None:
        attachment = self.attachment(render_service)
        render_service.close_render_session(attachment.render_session_id)
        del self._attachments[render_service.name]

    def recruit_more(self) -> list:
        """Ask UDDI for unconnected render services and attach them."""
        if self.recruiter is None:
            return []
        result = self.recruiter.recruit(
            exclude=set(self._attachments))
        attached = []
        for service in result.services:
            if service.name not in self._attachments:
                self.connect(service)
                attached.append(service)
        return attached

    # -- placement & distribution ----------------------------------------------------------

    def place_dataset(self) -> Placement:
        """Run the scheduler over the current pool (recruiting if needed).

        On a distributed placement, plans and applies the scene-subset
        split: every service's render session is narrowed to its share and
        the data service's interest sets follow.
        """
        cost = tree_cost(self.master_tree)
        pool = self.render_services
        if not pool and self.recruiter is not None:
            self.recruit_more()
            pool = self.render_services
        if not pool:
            raise ServiceError("no render services available or discoverable")
        # Release this session's existing shares before interrogation —
        # capacity already committed to *this* dataset is available for
        # its own (re-)placement; other sessions' commitments still count.
        for attachment in self._attachments.values():
            attachment.share = set()
            self._narrow(attachment.service, set())
        placement = self.scheduler.place(cost, pool)
        for service in placement.recruited:
            if service.name not in self._attachments:
                self.connect(service)

        if placement.mode == "single":
            service = placement.assignments[0].service
            for attachment in self._attachments.values():
                attachment.share = set()
                self._narrow(attachment.service, set())
            self.attachment(service).share = {
                n.node_id for n in self.master_tree.geometry_nodes()}
            self._narrow(service, None)
        else:
            # Budgets are each assignee's full headroom, not its nominal
            # share — integer-grain packing needs the slack (the scheduler
            # already verified the total fits).
            budgets = {
                a.service.name: float(a.report.headroom(self.target_fps))
                for a in placement.assignments
            }
            volume_hosts = {
                a.service.name for a in placement.assignments
                if a.report.capacity.volume_support
            }
            plan = self.distributor.plan(self.master_tree, budgets,
                                         volume_hosts=volume_hosts)
            self.apply_distribution(plan)
        self.placement = placement
        return placement

    def apply_distribution(self, plan: DistributionPlan) -> None:
        for name, ids in plan.shares.items():
            attachment = self._attachments.get(name)
            if attachment is None:
                raise SessionError(
                    f"plan references unattached service {name!r}")
            attachment.share = set(ids)
            self._hand_off_share(attachment)

    def _hand_off_share(self, attachment: ServiceAttachment) -> None:
        """Ship a service its share as a self-contained subtree.

        Needed whenever the share references nodes the service's bootstrap
        copy predates (exploded meshes) or lacks (migration receivers).
        """
        service = attachment.service
        if attachment.share:
            subtree = self.master_tree.extract_subtree(
                sorted(attachment.share))
            service.assign_subset(attachment.render_session_id, subtree,
                                  attachment.share,
                                  from_host=self.data_service.host)
        else:
            service.render_session(
                attachment.render_session_id).assigned_ids = set()
        subscriber = self._find_subscription(service)
        if subscriber is not None:
            self.data_service.set_interests(
                self.session_id, subscriber,
                set(attachment.share) if attachment.share else set())

    def _narrow(self, service, ids: set[int] | None) -> None:
        """Restrict a service's render session + interests to its share."""
        attachment = self.attachment(service)
        rsession = service.render_session(attachment.render_session_id)
        rsession.assigned_ids = set(ids) if ids is not None else None
        subscriber = self._find_subscription(service)
        if subscriber is not None:
            self.data_service.set_interests(
                self.session_id, subscriber,
                set(ids) if ids is not None else None)

    def _find_subscription(self, service) -> str | None:
        session = self.data_service.session(self.session_id)
        for name in session.subscribers:
            if name.startswith(f"{service.name}/"):
                return name
        return None

    def refine_share(self, service, grain: int) -> bool:
        """Explode a service's oversized mesh nodes so migration can move
        fine-grained pieces ("nodes must [be] carefully selected to perform
        a fine-grain movement of work").  Returns True when anything split.
        """
        import math

        from repro.core.distribution import explode_mesh_node
        from repro.scenegraph.nodes import MeshNode

        if grain < 1:
            raise ValueError("grain must be >= 1")
        attachment = self.attachment(service)
        changed = False
        for nid in list(attachment.share):
            if nid not in self.master_tree:
                continue
            node = self.master_tree.node(nid)
            if isinstance(node, MeshNode) and node.n_polygons > grain:
                n_parts = math.ceil(node.n_polygons / grain)
                new_ids = explode_mesh_node(self.master_tree, nid, n_parts)
                attachment.share.discard(nid)
                attachment.share.update(new_ids)
                changed = True
        if changed:
            self._hand_off_share(attachment)
        return changed

    def reassign_nodes(self, source, destination, node_ids: list[int]
                       ) -> None:
        """Move responsibility for nodes between services (migration).

        The receiver gets the moved nodes' geometry shipped as a subtree;
        the donor merely narrows its assignment (its copy keeps the stale
        geometry until the session ends, as the paper's scheme does).
        """
        src = self.attachment(source)
        dst = self.attachment(destination)
        moving = set(node_ids)
        missing = moving - src.share
        if missing:
            raise SessionError(
                f"{source.name!r} does not own nodes {sorted(missing)}")
        src.share -= moving
        dst.share |= moving
        self._narrow(source, src.share)
        self._hand_off_share(dst)

    # -- rendering ---------------------------------------------------------------------------

    def render_composite(self, camera: CameraNode | Camera, width: int,
                         height: int) -> tuple[FrameBuffer, float]:
        """Dataset-distributed frame: every share renders, depth-composite.

        Returns the merged framebuffer and the simulated frame latency
        (slowest share + framebuffer transfers to the compositing service).
        """
        active = [a for a in self._attachments.values() if a.share]
        if not active:
            raise SessionError("no service holds a share; call "
                               "place_dataset() first")
        clock = self.data_service.network.sim.clock
        compositor_host = active[0].service.host
        buffers = []
        slowest = 0.0
        transfer_total = 0.0
        for attachment in active:
            t0 = clock.now
            fb, _ = attachment.service.render_view(
                attachment.render_session_id, camera, width, height,
                offscreen=True)
            elapsed = clock.now - t0
            slowest = max(slowest, elapsed)
            if attachment.service.host != compositor_host:
                transfer_total += self.data_service.network.transfer_time(
                    attachment.service.host, compositor_host,
                    fb.nbytes_with_depth)
            buffers.append(fb)
        merged = depth_composite(buffers)
        latency = slowest + transfer_total
        return merged, latency

    def render_tiled(self, camera: CameraNode | Camera, width: int,
                     height: int, local_service=None
                     ) -> tuple[FrameBuffer, TilePlan, float]:
        """Framebuffer-distributed frame across all attached services."""
        services = self.render_services
        if not services:
            raise SessionError("no render services attached")
        local = local_service or services[0]
        assistants = {
            s.name: s.capacity().polygons_per_second
            for s in services if s is not local
        }
        plan = self.tile_distributor.plan(
            width, height, local.name, assistants,
            local_share=local.capacity().polygons_per_second)
        clock = self.data_service.network.sim.clock
        target = FrameBuffer(width, height)
        by_name = {s.name: s for s in services}
        tiles = []
        slowest = 0.0
        for assignment in plan.assignments:
            service = by_name[assignment.service_name]
            attachment = self.attachment(service)
            t0 = clock.now
            fb, _ = service.render_tile(
                attachment.render_session_id, camera, assignment.tile,
                width, height)
            elapsed = clock.now - t0
            if not assignment.local:
                elapsed += self.data_service.network.transfer_time(
                    service.host, local.host, fb.nbytes_with_depth)
            slowest = max(slowest, elapsed)
            tiles.append((assignment.tile, fb))
        assemble_tiles(target, tiles)
        return target, plan, slowest

    # -- migration ---------------------------------------------------------------------------

    def observe_frame(self, service, fps: float) -> None:
        """Feed a frame-rate observation into the migration policy."""
        self.migrator.record_frame(
            service, self.data_service.network.sim.clock.now, fps)

    def rebalance(self) -> list:
        """One migration-policy pass; returns the actions taken."""
        return self.migrator.plan(self)
