"""The collaborative-session orchestrator.

Ties the pieces into the paper's workflow: a data service hosts the scene;
render services connect (or are recruited via UDDI); a scheduler places the
dataset; the distributors split work; render services draw; the compositor
merges; the migrator rebalances as load changes.  This is the top-level
object the examples and benchmarks drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.capacity import DEFAULT_TARGET_FPS
from repro.core.cost import node_cost, tree_cost
from repro.core.distribution import (
    DatasetDistributor,
    DistributionPlan,
    FramebufferDistributor,
    TilePlan,
)
from repro.core.health import DEAD, HeartbeatMonitor, HeartbeatSource
from repro.core.migration import WorkloadMigrator
from repro.core.scheduler import Placement, RenderServiceScheduler
from repro.errors import NetworkError, ServiceError, SessionError
from repro.obs import active as _obs
from repro.obs.vocab import EVENT_PLACEMENT, EVENT_RECOVERY, EVENT_RELEASE
from repro.render.camera import Camera
from repro.render.compositor import assemble_tiles, depth_composite
from repro.render.framebuffer import FrameBuffer
from repro.scenegraph.nodes import CameraNode


@dataclass
class ServiceAttachment:
    """A render service participating in this session."""

    service: object                    # RenderService
    render_session_id: str
    bootstrap_seconds: float
    share: set[int] = field(default_factory=set)


@dataclass(frozen=True)
class RecoveryReport:
    """What automatic recovery did about one dead render service."""

    failed: str
    #: receiver service name → node ids it absorbed
    reassigned: dict[str, tuple[int, ...]]
    #: services recruited via UDDI because nobody had headroom
    recruited: tuple[str, ...]
    time: float

    @property
    def nodes_recovered(self) -> int:
        return sum(len(ids) for ids in self.reassigned.values())


class CollaborativeSession:
    """One shared visualization session across the grid."""

    def __init__(self, data_service, session_id: str,
                 target_fps: float = DEFAULT_TARGET_FPS,
                 recruiter=None,
                 distributor: DatasetDistributor | None = None,
                 migrator: WorkloadMigrator | None = None,
                 pool=None) -> None:
        self.data_service = data_service
        self.session_id = session_id
        self.target_fps = target_fps
        self.recruiter = recruiter
        #: the owning :class:`~repro.core.grid.SessionGridManager`, when
        #: this session runs on a shared multi-tenant pool.  Pool-owned
        #: sessions draw replacement capacity from the pool
        #: (:meth:`SessionGridManager.lend`) instead of scanning UDDI —
        #: the session orchestrates *work*, the grid owns *services*.
        self.pool = pool
        self.scheduler = RenderServiceScheduler(
            data_service, target_fps=target_fps, recruiter=recruiter)
        self.distributor = distributor or DatasetDistributor()
        self.tile_distributor = FramebufferDistributor()
        self.migrator = migrator or WorkloadMigrator(target_fps=target_fps)
        self._attachments: dict[str, ServiceAttachment] = {}
        self.placement: Placement | None = None
        # -- fault tolerance state (see enable_fault_tolerance) --
        self.health: HeartbeatMonitor | None = None
        self._heartbeats: dict[str, HeartbeatSource] = {}
        self._heartbeat_interval: float = 0.5
        #: services declared dead and recovered from (never re-recruited)
        self.failed_services: set[str] = set()
        self.recoveries: list[RecoveryReport] = []
        #: last good framebuffer per tile rect, for degraded compositing
        self._tile_cache: dict[tuple[int, int, int, int], FrameBuffer] = {}
        self.last_frame_degraded: bool = False
        self.degraded_frames: int = 0
        #: frames rendered through this session (composite or tiled);
        #: doubles as the ``frame`` attribute on traced spans
        self.frames_rendered: int = 0

    # -- introspection -----------------------------------------------------------

    @property
    def master_tree(self):
        return self.data_service.session(self.session_id).tree

    @property
    def render_services(self) -> list:
        return [a.service for a in self._attachments.values()]

    def attachment(self, service) -> ServiceAttachment:
        name = getattr(service, "name", service)
        try:
            return self._attachments[name]
        except KeyError:
            raise SessionError(
                f"render service {name!r} is not attached") from None

    def share_of(self, service) -> set[int]:
        return self.attachment(service).share

    def share_polygons(self, service) -> int:
        """Polygon count of the share one attached service holds now."""
        name = getattr(service, "name", service)
        attachment = self._attachments.get(name)
        if attachment is None or not attachment.share:
            return 0
        return sum(node_cost(self.master_tree.node(nid)).polygons
                   for nid in attachment.share
                   if nid in self.master_tree)

    # -- membership ------------------------------------------------------------------

    def connect(self, render_service, subset_ids: set[int] | None = None,
                introspective: bool = True) -> ServiceAttachment:
        """Attach a render service (bootstrapping its scene copy)."""
        if render_service.name in self._attachments:
            raise SessionError(
                f"{render_service.name!r} already attached")
        rsession, timing = render_service.create_render_session(
            self.data_service, self.session_id, subset_ids=subset_ids,
            introspective=introspective)
        attachment = ServiceAttachment(
            service=render_service,
            render_session_id=rsession.render_session_id,
            bootstrap_seconds=timing.total_seconds,
            share=set(subset_ids) if subset_ids is not None else set())
        self._attachments[render_service.name] = attachment
        if self.health is not None:
            self._start_heartbeat(render_service)
        return attachment

    def disconnect(self, render_service) -> None:
        attachment = self.attachment(render_service)
        render_service.close_render_session(attachment.render_session_id)
        del self._attachments[render_service.name]
        self._stop_heartbeat(render_service.name)

    def recruit_more(self) -> list:
        """Attach more render services: from the shared pool, or via UDDI.

        Pool-owned sessions borrow spare members from their
        :class:`~repro.core.grid.SessionGridManager`; stand-alone
        sessions scan UDDI through their recruiter.  Services already
        declared dead, and services whose host is down right now, are
        never (re-)recruited either way.
        """
        if self.pool is not None:
            return self.pool.lend(self)
        if self.recruiter is None:
            return []
        result = self.recruiter.recruit(
            exclude=set(self._attachments) | self.failed_services)
        attached = []
        network = self.data_service.network
        for service in result.services:
            if service.name in self._attachments:
                continue
            try:
                if not network.host_is_up(service.host):
                    continue
                self.connect(service)
            except (NetworkError, ServiceError):
                # unknown/unroutable host (e.g. a network partition between
                # the data service and the candidate): skip it, keep
                # recruiting the reachable ones
                continue
            # A plain connect leaves the render session unnarrowed
            # (assigned_ids None = the whole tree), so the recruit would
            # *commit* the full scene while its share says empty — it
            # must join idle until migration or distribution hands it
            # work, or it reads as the most loaded member of the pool.
            self._narrow(service, set())
            attached.append(service)
        return attached

    def release_service(self, service) -> dict[str, tuple[int, ...]]:
        """Drain a member's share to its peers and detach it (scale-in).

        The inverse of :meth:`recruit_more`: the service's share is
        repacked onto the remaining live members (the same greedy packing
        recovery uses), its render session is closed cleanly, and — unlike
        a failure — its name is *not* added to :attr:`failed_services`, so
        it stays registered with UDDI as recruitable spare capacity and a
        later recruitment scan can bring it back.  Returns the receiver
        name → reassigned node ids mapping.
        """
        attachment = self.attachment(service)
        name = attachment.service.name
        peers = [a for peer, a in self._attachments.items()
                 if peer != name and self.service_live(a.service)]
        if not peers:
            raise SessionError(
                f"cannot release {name!r}: no live peer to absorb its "
                f"share")
        orphans = set(attachment.share)
        reassigned: dict[str, tuple[int, ...]] = {}
        if orphans:
            assigned = self._pack_orphans(orphans, peers)
            attachment.share = set()
            self._narrow(attachment.service, set())
            for receiver_name, ids in assigned.items():
                receiver = self._attachments[receiver_name]
                receiver.share |= ids
                self._hand_off_share(receiver)
                reassigned[receiver_name] = tuple(sorted(ids))
        self.disconnect(attachment.service)
        obs = _obs()
        if obs.enabled:
            now = self.data_service.network.sim.now
            obs.recorder.note(
                EVENT_RELEASE, time=now,
                detail=f"{name} drained to {sorted(reassigned)} and "
                       f"returned to the registry "
                       f"({sum(len(i) for i in reassigned.values())} nodes)")
            obs.metrics.counter("rave_session_releases_total",
                                "render services drained and released",
                                session=self.session_id).inc()
        return reassigned

    # -- placement & distribution ----------------------------------------------------------

    def place_dataset(self) -> Placement:
        """Run the scheduler over the current pool (recruiting if needed).

        On a distributed placement, plans and applies the scene-subset
        split: every service's render session is narrowed to its share and
        the data service's interest sets follow.
        """
        cost = tree_cost(self.master_tree)
        pool = self.render_services
        if not pool and self.recruiter is not None:
            self.recruit_more()
            pool = self.render_services
        if not pool:
            raise ServiceError("no render services available or discoverable")
        # Release this session's existing shares before interrogation —
        # capacity already committed to *this* dataset is available for
        # its own (re-)placement; other sessions' commitments still count.
        for attachment in self._attachments.values():
            attachment.share = set()
            self._narrow(attachment.service, set())
        placement = self.scheduler.place(cost, pool)
        for service in placement.recruited:
            if service.name not in self._attachments:
                self.connect(service)

        if placement.mode == "single":
            service = placement.assignments[0].service
            for attachment in self._attachments.values():
                attachment.share = set()
                self._narrow(attachment.service, set())
            self.attachment(service).share = {
                n.node_id for n in self.master_tree.geometry_nodes()}
            self._narrow(service, None)
        else:
            # Budgets are each assignee's full headroom, not its nominal
            # share — integer-grain packing needs the slack (the scheduler
            # already verified the total fits).
            budgets = {
                a.service.name: float(a.report.headroom(self.target_fps))
                for a in placement.assignments
            }
            volume_hosts = {
                a.service.name for a in placement.assignments
                if a.report.capacity.volume_support
            }
            plan = self.distributor.plan(self.master_tree, budgets,
                                         volume_hosts=volume_hosts)
            self.apply_distribution(plan)
        self.placement = placement
        obs = _obs()
        if obs.enabled:
            obs.recorder.note(
                EVENT_PLACEMENT, time=self.data_service.network.sim.now,
                detail=f"{self.session_id}: {placement.mode} across "
                       f"{[a.service.name for a in placement.assignments]}")
        return placement

    def apply_distribution(self, plan: DistributionPlan) -> None:
        for name, ids in plan.shares.items():
            attachment = self._attachments.get(name)
            if attachment is None:
                raise SessionError(
                    f"plan references unattached service {name!r}")
            attachment.share = set(ids)
            self._hand_off_share(attachment)

    def _hand_off_share(self, attachment: ServiceAttachment) -> None:
        """Ship a service its share as a self-contained subtree.

        Needed whenever the share references nodes the service's bootstrap
        copy predates (exploded meshes) or lacks (migration receivers).
        """
        service = attachment.service
        if attachment.share:
            subtree = self.master_tree.extract_subtree(
                sorted(attachment.share))
            service.assign_subset(attachment.render_session_id, subtree,
                                  attachment.share,
                                  from_host=self.data_service.host)
        else:
            service.render_session(
                attachment.render_session_id).assigned_ids = set()
        subscriber = self._find_subscription(service)
        if subscriber is not None:
            self.data_service.set_interests(
                self.session_id, subscriber,
                set(attachment.share) if attachment.share else set())

    def _narrow(self, service, ids: set[int] | None) -> None:
        """Restrict a service's render session + interests to its share."""
        attachment = self.attachment(service)
        rsession = service.render_session(attachment.render_session_id)
        rsession.assigned_ids = set(ids) if ids is not None else None
        subscriber = self._find_subscription(service)
        if subscriber is not None:
            self.data_service.set_interests(
                self.session_id, subscriber,
                set(ids) if ids is not None else None)

    def _find_subscription(self, service) -> str | None:
        session = self.data_service.session(self.session_id)
        for name in session.subscribers:
            if name.startswith(f"{service.name}/"):
                return name
        return None

    def refine_share(self, service, grain: int) -> bool:
        """Explode a service's oversized mesh nodes so migration can move
        fine-grained pieces ("nodes must [be] carefully selected to perform
        a fine-grain movement of work").  Returns True when anything split.
        """
        import math

        from repro.core.distribution import explode_mesh_node
        from repro.scenegraph.nodes import MeshNode

        if grain < 1:
            raise ValueError("grain must be >= 1")
        attachment = self.attachment(service)
        changed = False
        for nid in list(attachment.share):
            if nid not in self.master_tree:
                continue
            node = self.master_tree.node(nid)
            if isinstance(node, MeshNode) and node.n_polygons > grain:
                n_parts = math.ceil(node.n_polygons / grain)
                new_ids = explode_mesh_node(self.master_tree, nid, n_parts)
                attachment.share.discard(nid)
                attachment.share.update(new_ids)
                changed = True
        if changed:
            self._hand_off_share(attachment)
        return changed

    def reassign_nodes(self, source, destination, node_ids: list[int]
                       ) -> None:
        """Move responsibility for nodes between services (migration).

        The receiver gets the moved nodes' geometry shipped as a subtree;
        the donor merely narrows its assignment (its copy keeps the stale
        geometry until the session ends, as the paper's scheme does).
        """
        src = self.attachment(source)
        dst = self.attachment(destination)
        moving = set(node_ids)
        missing = moving - src.share
        if missing:
            raise SessionError(
                f"{source.name!r} does not own nodes {sorted(missing)}")
        src.share -= moving
        dst.share |= moving
        self._narrow(source, src.share)
        self._hand_off_share(dst)

    # -- fault tolerance ---------------------------------------------------------------------

    def enable_fault_tolerance(self, heartbeat_interval: float = 0.5,
                               suspect_after: float = 1.5,
                               dead_after: float = 4.0,
                               auto_recover: bool = True,
                               monitor: HeartbeatMonitor | None = None
                               ) -> HeartbeatMonitor:
        """Watch every attached render service with heartbeat leases.

        Each service emits beats across the simulated network to the data
        service's host; silence beyond ``suspect_after`` marks it
        suspected, beyond ``dead_after`` dead.  With ``auto_recover`` a
        death immediately triggers :meth:`handle_service_failure`.  The
        monitor polls on a recurring simulator event, so the caller only
        has to pump the simulator (``network.sim.run_until``).
        """
        sim = self.data_service.network.sim
        self.health = monitor if monitor is not None else HeartbeatMonitor(
            sim, suspect_after=suspect_after, dead_after=dead_after)
        self._heartbeat_interval = heartbeat_interval
        if auto_recover:
            self.health.on_dead.append(self._on_service_dead)
        for attachment in self._attachments.values():
            self._start_heartbeat(attachment.service)
        self.health.start(period=heartbeat_interval)
        return self.health

    def _start_heartbeat(self, service) -> None:
        if self.health is None or service.name in self._heartbeats:
            return
        source = HeartbeatSource(
            monitor=self.health, network=self.data_service.network,
            name=service.name, host=service.host,
            monitor_host=self.data_service.host,
            interval=self._heartbeat_interval)
        self._heartbeats[service.name] = source.start()

    def _stop_heartbeat(self, name: str) -> None:
        source = self._heartbeats.pop(name, None)
        if source is not None:
            source.stop()
        if self.health is not None:
            self.health.unwatch(name)

    def _on_service_dead(self, name: str) -> None:
        if name in self._attachments:
            self.handle_service_failure(name)

    def service_live(self, service) -> bool:
        """Is this service usable right now (host up, lease not dead)?"""
        try:
            if not self.data_service.network.host_is_up(service.host):
                return False
        except NetworkError:
            return False
        if self.health is not None and self.health.is_watched(service.name):
            return self.health.state(service.name) != DEAD
        return True

    def handle_service_failure(self, service) -> RecoveryReport:
        """Reclaim a dead service's share and redistribute it to survivors.

        The dead service's subscription is dropped (the data service stops
        multicasting at a black hole), its scene nodes are reassigned
        greedily — largest node first, to the survivor with the most
        remaining headroom — and when *nobody* has headroom, new services
        are recruited via UDDI first.  Every reassigned share is shipped
        as a self-contained subtree, exactly like a migration receiver.
        """
        name = getattr(service, "name", service)
        attachment = self._attachments.pop(name, None)
        if attachment is None:
            raise SessionError(f"render service {name!r} is not attached")
        self.failed_services.add(name)
        self._stop_heartbeat(name)
        orphans = set(attachment.share)
        # the dead service can't unsubscribe itself — do it for it
        session = self.data_service.session(self.session_id)
        for sub_name in list(session.subscribers):
            if sub_name.startswith(f"{name}/"):
                self.data_service.unsubscribe(self.session_id, sub_name)

        recruited: list[str] = []
        reassigned: dict[str, tuple[int, ...]] = {}
        if orphans:
            survivors = [a for a in self._attachments.values()
                         if self.service_live(a.service)]
            if (not any(self._attachment_headroom(a) > 0
                        for a in survivors)):
                recruited = [s.name for s in self.recruit_more()]
                survivors = [a for a in self._attachments.values()
                             if self.service_live(a.service)]
            if not survivors:
                raise ServiceError(
                    f"no live render services left to absorb the share of "
                    f"{name!r} ({len(orphans)} nodes)")
            assigned = self._pack_orphans(orphans, survivors)
            for receiver_name, ids in assigned.items():
                receiver = self._attachments[receiver_name]
                receiver.share |= ids
                self._hand_off_share(receiver)
                reassigned[receiver_name] = tuple(sorted(ids))

        report = RecoveryReport(
            failed=name, reassigned=reassigned,
            recruited=tuple(recruited),
            time=self.data_service.network.sim.now)
        self.recoveries.append(report)
        obs = _obs()
        if obs.enabled:
            obs.recorder.note(
                EVENT_RECOVERY, time=report.time,
                detail=f"{name} failed; reassigned "
                       f"{report.nodes_recovered} nodes to "
                       f"{sorted(reassigned)}; recruited {recruited}")
            m = obs.metrics
            m.counter("rave_session_recoveries_total",
                      "render-service failures recovered from",
                      session=self.session_id).inc()
            m.counter("rave_session_nodes_recovered_total",
                      "scene nodes reassigned off dead services",
                      session=self.session_id).inc(report.nodes_recovered)
            if recruited:
                m.counter("rave_session_recovery_recruited_total",
                          "services recruited during recovery",
                          session=self.session_id).inc(len(recruited))
        return report

    def _attachment_headroom(self, attachment) -> float:
        service = attachment.service
        return max(0.0, service.capacity().polygon_budget(self.target_fps)
                   - service.committed_polygons())

    def _pack_orphans(self, orphans: set[int],
                      survivors: list) -> dict[str, set[int]]:
        """Greedy bin-pack: largest orphan first to the most headroom.

        Headroom can go negative — every node *must* land somewhere, the
        packing just keeps the overload as even as possible; the migration
        policy evens things out further once load reports resume.
        """
        costed = sorted(
            ((node_cost(self.master_tree.node(nid)).polygons
              if nid in self.master_tree else 0, nid)
             for nid in orphans),
            reverse=True)
        remaining = {a.service.name: self._attachment_headroom(a)
                     for a in survivors}
        assigned: dict[str, set[int]] = {}
        for polys, nid in costed:
            receiver = max(remaining, key=lambda n: remaining[n])
            assigned.setdefault(receiver, set()).add(nid)
            remaining[receiver] -= polys
        return assigned

    def handle_data_failure(self):
        """Fail over to a data-service mirror and re-subscribe everyone.

        The mirror inherits subscribers and any missed audit-trail entries
        (:meth:`DataService.failover_to`); every attached render service is
        then re-pointed so its shared scene copy, subscription and future
        bootstraps all track the mirror.  Returns the mirror.
        """
        old = self.data_service
        mirror = old.failover_to(self.session_id)
        for attachment in self._attachments.values():
            attachment.service.repoint_data_service(
                old.name, mirror, self.session_id)
        self.data_service = mirror
        self.scheduler.data_service = mirror
        return mirror

    # -- rendering ---------------------------------------------------------------------------

    def render_composite(self, camera: CameraNode | Camera, width: int,
                         height: int) -> tuple[FrameBuffer, float]:
        """Dataset-distributed frame: every share renders, depth-composite.

        Returns the merged framebuffer and the simulated frame latency
        (slowest share + framebuffer transfers to the compositing service).
        A share whose service has failed mid-frame is skipped and the frame
        flagged degraded (``last_frame_degraded``) — recovery will reassign
        those nodes; meanwhile the survivors' content still arrives.
        """
        active = [a for a in self._attachments.values() if a.share]
        if not active:
            raise SessionError("no service holds a share; call "
                               "place_dataset() first")
        live = [a for a in active if self.service_live(a.service)]
        if not live:
            raise SessionError("no live service holds a share")
        self.last_frame_degraded = len(live) < len(active)
        if self.last_frame_degraded:
            self.degraded_frames += 1
        frame = self.frames_rendered
        self.frames_rendered += 1
        obs = _obs()
        clock = self.data_service.network.sim.clock
        compositor_host = live[0].service.host
        buffers = []
        slowest = 0.0
        transfer_total = 0.0
        for attachment in live:
            t0 = clock.now
            fb, _ = attachment.service.render_view(
                attachment.render_session_id, camera, width, height,
                offscreen=True)
            elapsed = clock.now - t0
            slowest = max(slowest, elapsed)
            transfer = 0.0
            if attachment.service.host != compositor_host:
                transfer = self.data_service.network.transfer_time(
                    attachment.service.host, compositor_host,
                    fb.nbytes_with_depth)
                transfer_total += transfer
            if obs.enabled:
                name = attachment.service.name
                obs.tracer.record("render", t0, t0 + elapsed,
                                  session=self.session_id, frame=frame,
                                  service=name, mode="composite")
                if transfer:
                    obs.tracer.record("transfer", t0 + elapsed,
                                      t0 + elapsed + transfer,
                                      session=self.session_id, frame=frame,
                                      service=name, mode="composite")
            buffers.append(fb)
        merged = depth_composite(buffers)
        latency = slowest + transfer_total
        if obs.enabled:
            end = clock.now + transfer_total
            obs.tracer.record("composite", end, end,
                              session=self.session_id, frame=frame,
                              mode="composite")
            self._count_frame(obs, "composite", latency)
        return merged, latency

    def render_tiled(self, camera: CameraNode | Camera, width: int,
                     height: int, local_service=None
                     ) -> tuple[FrameBuffer, TilePlan, float]:
        """Framebuffer-distributed frame across all attached services.

        A tile whose service fails mid-frame (host down, unroutable) is
        filled from the last good framebuffer for that tile rectangle — or
        left as background on a cold cache — and the frame is flagged
        degraded instead of tearing.
        """
        services = self.render_services
        if not services:
            raise SessionError("no render services attached")
        local = local_service or services[0]
        assistants = {
            s.name: s.capacity().polygons_per_second
            for s in services if s is not local
        }
        plan = self.tile_distributor.plan(
            width, height, local.name, assistants,
            local_share=local.capacity().polygons_per_second)
        frame = self.frames_rendered
        self.frames_rendered += 1
        obs = _obs()
        clock = self.data_service.network.sim.clock
        target = FrameBuffer(width, height)
        by_name = {s.name: s for s in services}
        tiles = []
        slowest = 0.0
        degraded = False
        for assignment in plan.assignments:
            service = by_name[assignment.service_name]
            attachment = self.attachment(service)
            rect = (assignment.tile.x0, assignment.tile.y0,
                    assignment.tile.width, assignment.tile.height)
            t0 = clock.now
            try:
                if not self.data_service.network.host_is_up(service.host):
                    raise NetworkError(f"host {service.host!r} is down")
                fb, _ = service.render_tile(
                    attachment.render_session_id, camera, assignment.tile,
                    width, height)
                render_end = clock.now
                elapsed = render_end - t0
                transfer = 0.0
                if not assignment.local:
                    transfer = self.data_service.network.transfer_time(
                        service.host, local.host, fb.nbytes_with_depth)
                    elapsed += transfer
            except (NetworkError, ServiceError):
                degraded = True
                fb = self._tile_cache.get(rect)
                if fb is None:
                    fb = FrameBuffer(assignment.tile.width,
                                     assignment.tile.height)
            else:
                slowest = max(slowest, elapsed)
                self._tile_cache[rect] = fb
                if obs.enabled:
                    obs.tracer.record("render", t0, render_end,
                                      session=self.session_id, frame=frame,
                                      service=service.name, mode="tiled")
                    if transfer:
                        obs.tracer.record("transfer", render_end,
                                          render_end + transfer,
                                          session=self.session_id,
                                          frame=frame, service=service.name,
                                          mode="tiled")
            tiles.append((assignment.tile, fb))
        self.last_frame_degraded = degraded
        if degraded:
            self.degraded_frames += 1
        assemble_tiles(target, tiles)
        if obs.enabled:
            end = clock.now + slowest
            obs.tracer.record("composite", end, end,
                              session=self.session_id, frame=frame,
                              mode="tiled")
            self._count_frame(obs, "tiled", slowest)
        return target, plan, slowest

    def _count_frame(self, obs, mode: str, latency: float) -> None:
        """Shared frame accounting for both rendering modes."""
        m = obs.metrics
        m.counter("rave_session_frames_total", "frames rendered",
                  session=self.session_id, mode=mode).inc()
        if self.last_frame_degraded:
            m.counter("rave_session_degraded_frames_total",
                      "frames completed from stale/blank content",
                      session=self.session_id).inc()
        m.histogram("rave_session_frame_latency_seconds",
                    "end-to-end frame latency", mode=mode).observe(latency)

    def frame_timeline(self) -> dict:
        """Per-frame span chains for this session from the active tracer.

        Returns ``{frame index: [Span, ...]}`` with each chain
        start-ordered (``render → transfer → composite``); empty when no
        observability is installed (the no-op tracer stores nothing).
        """
        return _obs().tracer.chains(session=self.session_id)

    # -- migration ---------------------------------------------------------------------------

    def observe_frame(self, service, fps: float) -> None:
        """Feed a frame-rate observation into the migration policy."""
        self.migrator.record_frame(
            service, self.data_service.network.sim.clock.now, fps)

    def rebalance(self, alerts=None) -> list:
        """One migration-policy pass; returns the actions taken.

        ``alerts`` — optional monitor-plane alerts forwarded to
        :meth:`WorkloadMigrator.plan`, letting scraped telemetry trigger
        migrations the local trackers haven't seen yet.
        """
        return self.migrator.plan(self, alerts=alerts)
