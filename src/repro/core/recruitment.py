"""UDDI-driven recruitment of additional render services.

"If there is insufficient spare capacity, then the data server uses UDDI
to discover additional render services that are not connected to the data
service.  These underutilised services can then be recruited to join the
session hosted on the data service and contribute to the rendering
resources."  (paper §3.2.7, timed in Table 5)

The :class:`Recruiter` resolves UDDI access points back to live
:class:`~repro.services.render_service.RenderService` objects through a
service directory (the in-simulation equivalent of dereferencing the
endpoint URL), preferring a warm access-point scan and falling back to the
full bootstrap when the proxy is cold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.services.uddi import UddiClient

#: UDDI names the RAVE deployment registers under
RAVE_BUSINESS = "RAVE project"
RENDER_TMODEL = "RaveRenderService"
MONITOR_TMODEL = "RaveMonitorService"
DATA_TMODEL = "RaveDataService"
FARM_TMODEL = "RaveFrameQueueService"


@dataclass
class RecruitmentResult:
    """Outcome of one recruitment attempt."""

    services: list = field(default_factory=list)
    scan_seconds: float = 0.0
    used_full_bootstrap: bool = False

    @property
    def found(self) -> bool:
        return bool(self.services)


class Recruiter:
    """Discovers unconnected render services for the data service."""

    def __init__(self, uddi_client: UddiClient,
                 directory: dict[str, object],
                 business: str = RAVE_BUSINESS,
                 tmodel: str = RENDER_TMODEL) -> None:
        #: endpoint URL → RenderService object.  Held live (not copied):
        #: access points are re-resolved at scan time, so services that
        #: register after this recruiter was built are still recruitable.
        self.uddi_client = uddi_client
        self.directory = directory
        self.business = business
        self.tmodel = tmodel
        self.scans = 0

    def register(self, endpoint: str, service) -> None:
        """Add a resolvable service to the directory."""
        self.directory[endpoint] = service

    def recruit(self, exclude: set | None = None) -> RecruitmentResult:
        """Scan UDDI and return render services not already in ``exclude``.

        The first scan after construction performs the full bootstrap
        (proxy creation + three queries); subsequent scans are warm
        access-point checks — the two rows of Table 5's UDDI column.
        """
        exclude = exclude or set()
        if self.uddi_client._proxy_ready:
            scan = self.uddi_client.scan_access_points(self.business,
                                                       self.tmodel)
            full = False
        else:
            scan = self.uddi_client.full_bootstrap(self.business, self.tmodel)
            full = True
        self.scans += 1
        recruited = []
        for point in scan.access_points:
            service = self.directory.get(point.url)
            if service is None:
                continue
            name = getattr(service, "name", None)
            if name in exclude or service in recruited:
                continue
            recruited.append(service)
        return RecruitmentResult(services=recruited,
                                 scan_seconds=scan.elapsed_seconds,
                                 used_full_bootstrap=full)
