"""Alert-driven recruitment autoscaling: the observe→scale loop.

Paper §3.2.7 sketches *resource-aware growth*: "if there is insufficient
spare capacity, then the data server uses UDDI to discover additional
render services ... recruited to join the session".  PR 3 closed the
observe→migrate loop (monitor alerts drive
:meth:`~repro.core.migration.WorkloadMigrator.plan`); this module closes
the observe→**scale** loop on top of it:

- on sustained **grid-wide overload** — the monitor's aggregate
  ``rave_grid_mean_fps`` pinned below the interactive threshold — with no
  migration headroom left in the pool, the autoscaler triggers a
  :class:`~repro.core.recruitment.Recruiter` UDDI scan through
  :meth:`CollaborativeSession.recruit_more` and spreads work onto the
  recruits (never re-recruiting the session's dead-service set);
- on sustained **grid-wide underload** — aggregate utilisation below the
  migration policy's threshold — it drains the least-utilised member's
  share to its peers and releases the service back to the registry as
  recruitable spare capacity (:meth:`CollaborativeSession.release_service`);
- every decision respects a **cooldown window** on the simulated clock,
  and a release is only taken when the survivors can absorb the drained
  share inside their headroom — so grow/release never flap.

The autoscaler is a daemon tick like the monitor's scrape loop: it wakes
on the simulated clock, reads :meth:`MonitorService.firing_alerts`, and
acts.  Nothing here runs unless an autoscaler is constructed and started;
sessions without one behave exactly as before.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.cost import node_cost
from repro.errors import ServiceError
from repro.obs import active as _obs
from repro.obs.rules import GRID_OVERLOAD_KIND, GRID_UNDERLOAD_KIND
from repro.obs.vocab import (
    ALERT_OVERLOAD,
    EVENT_SCALE_PREFIX,
    FARM_BACKLOG_KIND,
    GRID_SATURATED_KIND,
)


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaling decision that changed (or grew) the pool."""

    time: float
    kind: str                     # "grow" | "release"
    reason: str                   # the alert rule that drove the decision
    services: tuple[str, ...]     # recruited / released service names
    pool_before: int
    pool_after: int


class RecruitmentAutoscaler:
    """Grows and shrinks a session's render pool from monitor alerts."""

    def __init__(self, session, monitor, period: float | None = None,
                 cooldown_seconds: float = 8.0, min_services: int = 1,
                 max_services: int | None = None,
                 drive_migration: bool = True, grid=None,
                 farm=None) -> None:
        if monitor is None:
            raise ServiceError("the autoscaler needs a MonitorService")
        if session is None and grid is None and farm is None:
            raise ServiceError(
                "the autoscaler needs a session, a session grid, "
                "or a render farm")
        self.session = session
        #: fleet mode: scale a shared multi-tenant pool
        #: (:class:`~repro.core.grid.SessionGridManager`) from grid-wide
        #: saturation signals instead of one session's alerts
        self.grid = grid
        #: second signal source: a batch render farm
        #: (:class:`~repro.farm.controller.RenderFarmController`) whose
        #: sustained ``farm-backlog`` alerts count as pool pressure; when
        #: paired with a grid, recruits are adopted as farm workers too,
        #: so one pool serves interactive sessions and batch jobs
        self.farm = farm
        self.monitor = monitor
        self.period = float(period if period is not None else monitor.period)
        if self.period <= 0:
            raise ServiceError("autoscale period must be positive")
        if cooldown_seconds < 0:
            raise ServiceError("cooldown must be non-negative")
        self.cooldown_seconds = float(cooldown_seconds)
        self.min_services = max(1, int(min_services))
        self.max_services = max_services
        #: also run the migration policy each tick (alerts drive
        #: :meth:`CollaborativeSession.rebalance`), so scaling and
        #: shuffling share one control loop
        self.drive_migration = drive_migration
        self.events: list[ScaleEvent] = []
        #: (time, size) at every pool-size change, bounded
        self.pool_history: deque = deque(maxlen=1024)
        self.migrations = 0
        self._last_scale_time: float | None = None
        self._running = False
        monitor.attach_autoscaler(self)
        self._note_pool(self.sim.now)

    # -- plumbing -------------------------------------------------------------------

    @property
    def sim(self):
        if self.grid is not None:
            return self.grid.network.sim
        if self.session is not None:
            return self.session.data_service.network.sim
        return self.farm.sim

    def pool_size(self) -> int:
        if self.grid is not None:
            return len(self.grid.members)
        if self.session is not None:
            return len(self.session.render_services)
        return self.farm.pool_size()

    def in_cooldown(self, now: float) -> bool:
        """Inside the hysteresis window after the last scale decision?"""
        return (self._last_scale_time is not None
                and now - self._last_scale_time < self.cooldown_seconds)

    def start(self) -> None:
        """Begin the recurring autoscale tick (a daemon, like scrapes)."""
        if self._running:
            return
        self._running = True
        self._schedule_tick()

    def stop(self) -> None:
        self._running = False

    def _schedule_tick(self) -> None:
        self.sim.schedule(self.period, self._tick, daemon=True)

    def _tick(self) -> None:
        if not self._running:
            return
        self.evaluate(self.monitor.firing_alerts())
        self._schedule_tick()

    # -- the decision procedure -----------------------------------------------------

    def evaluate(self, alerts, now: float | None = None) -> list[ScaleEvent]:
        """One control-loop pass over the monitor's firing alerts.

        Order of precedence: migrate within the pool if the migrator can
        act; grow when grid-wide overload persists and the pool lacks the
        headroom migration would need; release when grid-wide underload
        persists and the survivors can absorb the drained share.
        Decisions inside the cooldown window are deferred (migration
        still runs, but with the session's UDDI recruiting suppressed so
        a fresh release cannot be undone by the migrator's own recruit
        fallback).
        """
        now = self.sim.now if now is None else now
        if self.grid is not None:
            return self._evaluate_grid(list(alerts), now)
        if self.session is None:
            return self._evaluate_farm(list(alerts), now)
        session = self.session
        self._note_pool(now)
        alerts = list(alerts)
        grid_over = [a for a in alerts if a.kind == GRID_OVERLOAD_KIND]
        grid_under = [a for a in alerts if a.kind == GRID_UNDERLOAD_KIND]
        cooling = self.in_cooldown(now)

        before = {s.name for s in session.render_services}
        migrations = []
        if self.drive_migration and alerts:
            if cooling:
                saved, session.recruiter = session.recruiter, None
                try:
                    migrations = session.rebalance(alerts=alerts)
                finally:
                    session.recruiter = saved
            else:
                migrations = session.rebalance(alerts=alerts)
        self.migrations += len(migrations)

        events: list[ScaleEvent] = []
        grown = [s.name for s in session.render_services
                 if s.name not in before]
        if grown:
            # the migrator's overload path already recruited (nobody had
            # headroom for an alerted service) — record it as a grow
            reason = next((a.rule for a in alerts if a.kind == ALERT_OVERLOAD),
                          grid_over[0].rule if grid_over else ALERT_OVERLOAD)
            events.append(self._record("grow", now, reason, grown,
                                       len(before)))
        elif grid_over and not cooling and not self._at_max() \
                and not self._migration_headroom(alerts):
            pool_before = self.pool_size()
            recruited = session.recruit_more()
            if recruited:
                if self.drive_migration:
                    migrations = session.rebalance(alerts=alerts)
                    self.migrations += len(migrations)
                events.append(self._record(
                    "grow", now, grid_over[0].rule,
                    [s.name for s in recruited], pool_before))
        elif grid_under and not grid_over and not cooling:
            event = self._try_release(grid_under[0], now)
            if event is not None:
                events.append(event)
        if events:
            self._note_pool(self.sim.now)
        return events

    def _evaluate_grid(self, alerts, now: float) -> list[ScaleEvent]:
        """Fleet mode: one control-loop pass over the shared session grid.

        Saturation (queued/rejected admissions) or grid-wide overload
        grows the pool through the grid's own recruiter; while growth is
        unavailable (cooldown, max size, nothing discoverable) a
        sustained overload sheds the lowest-priority tenants instead of
        letting everyone collapse; calm skies walk the shed ladder back
        up.  Every pass ends by pumping the admission queue so freed or
        recruited capacity admits waiting requests promptly.
        """
        grid = self.grid
        self._note_pool(now)
        saturated = [a for a in alerts
                     if a.kind == GRID_SATURATED_KIND]
        grid_over = [a for a in alerts if a.kind == GRID_OVERLOAD_KIND]
        grid_under = [a for a in alerts if a.kind == GRID_UNDERLOAD_KIND]
        backlog = ([a for a in alerts if a.kind == FARM_BACKLOG_KIND]
                   if self.farm is not None else [])
        cooling = self.in_cooldown(now)

        events: list[ScaleEvent] = []
        pressure = saturated or grid_over or backlog
        if pressure and not cooling and not self._at_max():
            pool_before = self.pool_size()
            recruited = grid.grow()
            if recruited:
                if self.farm is not None:
                    self._adopt_into_farm(recruited)
                events.append(self._record(
                    "grow", now, pressure[0].rule,
                    [s.name for s in recruited], pool_before))
        if grid_over and not events:
            # no new capacity to be had right now: degrade gracefully
            grid.shed(now)
        if grid_under and not pressure and not cooling \
                and self.pool_size() > self.min_services:
            pool_before = self.pool_size()
            released = grid.release_idle(min_members=self.min_services)
            if released:
                events.append(self._record(
                    "release", now, grid_under[0].rule, released,
                    pool_before))
        if not pressure:
            grid.restore(now)
        grid.pump(now)
        if events:
            self._note_pool(self.sim.now)
        return events

    def _evaluate_farm(self, alerts, now: float) -> list[ScaleEvent]:
        """Batch-only mode: scale a render farm from its backlog alerts.

        Sustained ``farm-backlog`` (pending frames piling up at the
        queue) recruits extra workers through the farm's own UDDI path;
        once the backlog clears, idle workers are released back to the
        registry, both under the usual cooldown hysteresis and pool
        bounds.
        """
        farm = self.farm
        self._note_pool(now)
        backlog = [a for a in alerts if a.kind == FARM_BACKLOG_KIND]
        cooling = self.in_cooldown(now)

        events: list[ScaleEvent] = []
        if backlog and not cooling and not self._at_max():
            pool_before = self.pool_size()
            recruited = farm.grow()
            if recruited:
                farm.dispatch()
                events.append(self._record(
                    "grow", now, backlog[0].rule,
                    [s.name for s in recruited], pool_before))
        if not backlog and not cooling \
                and self.pool_size() > self.min_services:
            pool_before = self.pool_size()
            released = farm.release_idle(min_workers=self.min_services)
            if released:
                events.append(self._record(
                    "release", now, FARM_BACKLOG_KIND, released,
                    pool_before))
        if events:
            self._note_pool(self.sim.now)
        return events

    def _adopt_into_farm(self, recruited) -> None:
        """Recruits serve both planes when a farm shares the grid's pool."""
        current = {s.name for s in self.farm.workers()}
        for service in recruited:
            if service.name not in current:
                self.farm.add_worker(service)
        self.farm.dispatch()

    def _at_max(self) -> bool:
        return (self.max_services is not None
                and self.pool_size() >= self.max_services)

    def _migration_headroom(self, alerts) -> bool:
        """Can in-pool migration still relieve the overloaded members?

        Measures the unalerted members' spare capacity against the shed
        quantum the migrator asks per overloaded member (a tenth of its
        budget).  When the whole pool is alerted — or nobody has enough
        room — shuffling work is zero-sum and only recruitment helps.
        """
        session = self.session
        fps = session.target_fps
        over = {a.service for a in alerts if a.kind == ALERT_OVERLOAD}
        live = [s for s in session.render_services
                if session.service_live(s)]
        alerted = [s for s in live if s.name in over]
        receivers = [s for s in live if s.name not in over]
        headroom = sum(
            max(0.0, s.capacity().polygon_budget(fps)
                - s.committed_polygons())
            for s in receivers)
        need = sum(0.1 * s.capacity().polygon_budget(fps)
                   for s in alerted)
        if not alerted:
            # grid-wide slowdown with no member singled out: migration
            # has no donor to act on, so headroom is moot — grow
            return False
        return headroom >= need

    def _try_release(self, alert, now: float) -> ScaleEvent | None:
        """Drain-and-release the least-utilised member, guarded."""
        session = self.session
        live = [s for s in session.render_services
                if session.service_live(s)]
        if len(live) <= self.min_services:
            return None
        target_fps = session.target_fps
        candidate = min(live,
                        key=lambda s: (s.utilisation(target_fps), s.name))
        peers_headroom = sum(
            max(0.0, s.capacity().polygon_budget(target_fps)
                - s.committed_polygons())
            for s in live if s is not candidate)
        tree = session.master_tree
        share_cost = sum(node_cost(tree.node(nid)).polygons
                         for nid in session.share_of(candidate)
                         if nid in tree)
        if share_cost > peers_headroom:
            # draining would overload the survivors and re-trigger a grow
            # — the other half of the flap guard
            return None
        pool_before = self.pool_size()
        session.release_service(candidate)
        return self._record("release", now, alert.rule, [candidate.name],
                            pool_before)

    def _record(self, kind: str, now: float, reason: str, names,
                pool_before: int) -> ScaleEvent:
        event = ScaleEvent(time=now, kind=kind, reason=reason,
                           services=tuple(names), pool_before=pool_before,
                           pool_after=self.pool_size())
        self.events.append(event)
        self._last_scale_time = now
        obs = _obs()
        if obs.enabled:
            obs.recorder.note(
                EVENT_SCALE_PREFIX + kind, time=now,
                detail=f"{', '.join(event.services)} (pool {pool_before} "
                       f"-> {event.pool_after}; {reason})")
            obs.metrics.counter("rave_autoscale_events_total",
                                "autoscaler grow/release decisions",
                                kind=kind).inc()
        return event

    def _note_pool(self, now: float) -> None:
        size = self.pool_size()
        if self.pool_history and self.pool_history[-1][1] == size:
            return
        self.pool_history.append((now, size))

    # -- publication ----------------------------------------------------------------

    def describe(self) -> dict:
        """JSON-serialisable state for the monitor snapshot / dashboard."""
        return {
            "period": self.period,
            "cooldown_seconds": self.cooldown_seconds,
            "min_services": self.min_services,
            "max_services": self.max_services,
            "pool_size": self.pool_size(),
            "migrations": self.migrations,
            "pool": [{"time": t, "size": n} for t, n in self.pool_history],
            "events": [
                {"time": e.time, "kind": e.kind, "reason": e.reason,
                 "services": list(e.services),
                 "pool_before": e.pool_before, "pool_after": e.pool_after}
                for e in self.events
            ],
        }

    def __repr__(self) -> str:
        return (f"RecruitmentAutoscaler(pool={self.pool_size()}, "
                f"events={len(self.events)}, period={self.period}, "
                f"cooldown={self.cooldown_seconds})")


__all__ = ["RecruitmentAutoscaler", "ScaleEvent"]
