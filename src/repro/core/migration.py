"""Load-triggered workload migration.

Paper §3.2.7: "When a render service becomes overloaded (i.e. its rendering
rate drops below a given threshold), it informs the data server.  The data
server then examines available render services to find which service has
spare capacity ... removing nodes or tiles from the overloaded service and
adding them to an alternate service. ... When a render service is
significantly underloaded (for a given amount of time, to smooth out spikes
of usage), the data service again redistributes data. ... Nodes must [be]
carefully selected to perform a fine-grain movement of work.  If an
underloaded service has capacity for another 5k polygons/sec and still
maintain its current interactive frame rate, we do not want to add 100k
polygons by mistake."

Implementation:

- :class:`LoadTracker` — smoothed fps/utilisation history per service with
  sustained-duration thresholds (the "smooth out spikes" requirement);
- :class:`WorkloadMigrator` — the policy: detect overload/underload, pick a
  peer with headroom, and choose the node set to move with a greedy
  knapsack over per-node costs that never overshoots the receiver's
  headroom (the fine-grain guarantee).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.capacity import DEFAULT_TARGET_FPS
from repro.core.cost import node_cost
from repro.obs import active as _obs
from repro.obs.rules import (
    DEFAULT_OVERLOAD_FPS,
    DEFAULT_SMOOTHING_SECONDS,
    DEFAULT_UNDERLOAD_UTILISATION,
)
from repro.obs.vocab import ALERT_OVERLOAD, ALERT_UNDERLOAD, EVENT_MIGRATION


@dataclass(frozen=True)
class LoadSample:
    time: float
    fps: float
    utilisation: float


class LoadTracker:
    """Sliding-window load history for one render service."""

    def __init__(self, window_seconds: float = 10.0) -> None:
        self.window_seconds = window_seconds
        self._samples: deque[LoadSample] = deque()

    def record(self, sample: LoadSample) -> None:
        if self._samples and sample.time < self._samples[-1].time:
            raise ValueError("load samples must be time-ordered")
        self._samples.append(sample)
        cutoff = sample.time - self.window_seconds
        while self._samples and self._samples[0].time < cutoff:
            self._samples.popleft()

    @property
    def n_samples(self) -> int:
        return len(self._samples)

    def smoothed_fps(self) -> float:
        if not self._samples:
            return float("inf")
        return sum(s.fps for s in self._samples) / len(self._samples)

    def smoothed_utilisation(self) -> float:
        if not self._samples:
            return 0.0
        return (sum(s.utilisation for s in self._samples)
                / len(self._samples))

    def _sustained_below(self, key: str, threshold: float,
                         duration: float) -> bool:
        """Has ``key`` stayed below ``threshold`` for at least ``duration``?

        Requires the window to actually span ``duration`` (a single spike
        sample can never trigger), then checks every sample inside the
        trailing ``duration`` — including one landing exactly on the cutoff.
        """
        if not self._samples:
            return False
        span = self._samples[-1].time - self._samples[0].time
        if span < duration:
            return False
        cutoff = self._samples[-1].time - duration
        return all(getattr(s, key) < threshold for s in self._samples
                   if s.time >= cutoff)

    def sustained_below_fps(self, threshold: float,
                            duration: float) -> bool:
        """Has fps stayed below ``threshold`` for at least ``duration``?"""
        return self._sustained_below("fps", threshold, duration)

    def sustained_below_utilisation(self, threshold: float,
                                    duration: float) -> bool:
        return self._sustained_below("utilisation", threshold, duration)


@dataclass(frozen=True)
class MigrationAction:
    """A planned movement of work between two render services."""

    source: str
    destination: str
    node_ids: tuple[int, ...]
    polygons: int
    reason: str          # "overload" | "underload"


class WorkloadMigrator:
    """The data service's migration policy engine."""

    def __init__(self,
                 target_fps: float = DEFAULT_TARGET_FPS,
                 overload_fps: float = DEFAULT_OVERLOAD_FPS,
                 underload_utilisation: float = DEFAULT_UNDERLOAD_UTILISATION,
                 smoothing_seconds: float = DEFAULT_SMOOTHING_SECONDS) -> None:
        self.target_fps = target_fps
        self.overload_fps = overload_fps
        self.underload_utilisation = underload_utilisation
        self.smoothing_seconds = smoothing_seconds
        self.trackers: dict[str, LoadTracker] = {}
        self.actions: list[MigrationAction] = []

    def tracker(self, service_name: str) -> LoadTracker:
        if service_name not in self.trackers:
            self.trackers[service_name] = LoadTracker(
                window_seconds=max(10.0, 3 * self.smoothing_seconds))
        return self.trackers[service_name]

    def record_frame(self, service, time: float, fps: float) -> None:
        """Feed one rendered-frame observation into the tracker."""
        utilisation = service.utilisation(self.target_fps)
        self.tracker(service.name).record(LoadSample(
            time=time, fps=fps, utilisation=utilisation))
        obs = _obs()
        if obs.enabled:
            m = obs.metrics
            m.gauge("rave_service_fps", "last observed frame rate",
                    service=service.name).set(fps)
            m.gauge("rave_service_utilisation",
                    "committed polygons / budget at target fps",
                    service=service.name).set(utilisation)

    # -- detection -------------------------------------------------------------

    def overloaded(self, service) -> bool:
        return self.tracker(service.name).sustained_below_fps(
            self.overload_fps, self.smoothing_seconds)

    def underloaded(self, service) -> bool:
        t = self.tracker(service.name)
        return (t.n_samples > 0
                and t.sustained_below_utilisation(
                    self.underload_utilisation, self.smoothing_seconds))

    # -- node selection (the fine-grain knapsack) -------------------------------------

    @staticmethod
    def select_nodes(tree, candidate_ids: set[int], polygons_needed: float,
                     receiver_headroom: float,
                     hard_cap: float | None = None) -> tuple[list[int], int]:
        """Choose nodes to move: total ≥ needed, never above headroom.

        Greedy largest-first up to the need, then smallest-first to top up;
        nodes that would overshoot the receiver's headroom are skipped —
        the "do not want to add 100k polygons by mistake" rule.
        ``hard_cap`` additionally bounds the total moved even below the
        smallest-node override — the donor-protection limit on underload
        pulls.  Returns (node ids, polygons moved).
        """
        if polygons_needed <= 0:
            return [], 0
        costed = []
        for nid in candidate_ids:
            if nid not in tree:
                continue
            polys = node_cost(tree.node(nid)).polygons
            if polys > 0:
                costed.append((polys, nid))
        if not costed:
            return [], 0
        # The budget tracks the need, but always admits the smallest
        # movable node (otherwise coarse scenes could never make progress)
        # and never exceeds what the receiver can absorb.
        smallest = min(p for p, _ in costed)
        budget = min(receiver_headroom,
                     max(polygons_needed * 1.5, smallest))
        if hard_cap is not None:
            budget = min(budget, hard_cap)
        costed.sort(reverse=True)
        chosen: list[int] = []
        moved = 0
        for polys, nid in costed:
            if moved >= polygons_needed:
                break
            if moved + polys > budget:
                continue
            chosen.append(nid)
            moved += polys
        return chosen, moved

    # -- the rebalancing pass ------------------------------------------------------------

    def plan(self, session, alerts=None) -> list[MigrationAction]:
        """One policy pass over a :class:`CollaborativeSession`.

        Overloaded services shed work to the peer with the most headroom
        (recruiting via the session when nobody has spare capacity);
        underloaded services take work from the most loaded peer.

        ``alerts`` — optional monitor-plane alerts
        (:class:`repro.obs.rules.Alert`); a service named by a sustained
        ``overload``/``underload`` alert is treated as crossing the
        corresponding threshold even when this migrator's own trackers
        hold no samples, which lets a
        :class:`~repro.services.monitor.MonitorService` drive the policy
        from scraped telemetry.  Without alerts, behaviour is unchanged.
        """
        obs = _obs()
        over_alerted = {a.service for a in alerts or ()
                        if a.kind == ALERT_OVERLOAD}
        under_alerted = {a.service for a in alerts or ()
                         if a.kind == ALERT_UNDERLOAD}
        actions: list[MigrationAction] = []
        services = list(session.render_services)

        for service in services:
            if not (self.overloaded(service)
                    or service.name in over_alerted):
                continue
            if obs.enabled:
                obs.metrics.counter("rave_migration_triggers_total",
                                    "sustained threshold crossings",
                                    kind=ALERT_OVERLOAD).inc()
            # work to shed: enough to get back to the target frame time
            over = service.committed_polygons() - (
                service.capacity().polygon_budget(self.target_fps))
            needed = max(over,
                         0.1 * service.capacity().polygon_budget(
                             self.target_fps))
            receiver = self._best_receiver(services, exclude=service)
            if receiver is None and session.recruiter is not None:
                recruited = session.recruit_more()
                if recruited:
                    services = list(session.render_services)
                    receiver = self._best_receiver(services, exclude=service)
            if receiver is None:
                continue
            action = self._move(session, service, receiver, needed,
                                reason=ALERT_OVERLOAD)
            if action is not None:
                actions.append(action)

        for service in list(services):
            if not (self.underloaded(service)
                    or service.name in under_alerted):
                continue
            if obs.enabled:
                obs.metrics.counter("rave_migration_triggers_total",
                                    "sustained threshold crossings",
                                    kind=ALERT_UNDERLOAD).inc()
            donor = self._most_loaded(services, exclude=service)
            if donor is None:
                continue
            headroom = self._headroom(service)
            if headroom <= 0:
                continue
            # Donating must never push the donor below the underload
            # threshold itself, or two lightly loaded services ping-pong
            # the same nodes between consecutive plan() passes.
            donor_spare = (
                donor.committed_polygons()
                - self.underload_utilisation
                * donor.capacity().polygon_budget(self.target_fps))
            if donor_spare <= 0:
                continue
            action = self._move(session, donor, service,
                                polygons_needed=min(headroom * 0.5,
                                                    donor_spare),
                                reason=ALERT_UNDERLOAD, hard_cap=donor_spare)
            if action is not None:
                actions.append(action)

        if obs.enabled and actions:
            m = obs.metrics
            data_service = getattr(session, "data_service", None)
            now = (data_service.network.sim.now
                   if data_service is not None else 0.0)
            for action in actions:
                m.counter("rave_migration_actions_total",
                          "planned work movements",
                          reason=action.reason).inc()
                m.counter("rave_migration_polygons_moved_total",
                          "polygons migrated between services"
                          ).inc(action.polygons)
                obs.recorder.note(
                    EVENT_MIGRATION, time=now,
                    detail=f"{action.source} -> {action.destination}: "
                           f"{action.polygons} polygons ({action.reason})")
        self.actions.extend(actions)
        return actions

    # -- helpers ----------------------------------------------------------------------

    def _headroom(self, service) -> float:
        return max(0.0, service.capacity().polygon_budget(self.target_fps)
                   - service.committed_polygons())

    def _best_receiver(self, services, exclude):
        candidates = [s for s in services
                      if s is not exclude and self._headroom(s) > 0]
        if not candidates:
            return None
        return max(candidates, key=self._headroom)

    def _most_loaded(self, services, exclude):
        candidates = [s for s in services if s is not exclude
                      and s.committed_polygons() > 0]
        if not candidates:
            return None
        return max(candidates, key=lambda s: s.utilisation(self.target_fps))

    def _move(self, session, source, destination, polygons_needed: float,
              reason: str,
              hard_cap: float | None = None) -> MigrationAction | None:
        share = session.share_of(source)
        if not share:
            return None
        headroom = self._headroom(destination)
        node_ids, moved = self.select_nodes(
            session.master_tree, share, polygons_needed,
            receiver_headroom=headroom, hard_cap=hard_cap)
        if not node_ids and hasattr(session, "refine_share"):
            # Monolithic nodes too big to move anywhere: explode them to a
            # grain the receiver can absorb, then retry.
            grain = max(1, int(headroom * 0.5))
            if session.refine_share(source, grain):
                share = session.share_of(source)
                node_ids, moved = self.select_nodes(
                    session.master_tree, share, polygons_needed,
                    receiver_headroom=headroom, hard_cap=hard_cap)
        if not node_ids:
            return None
        session.reassign_nodes(source, destination, node_ids)
        return MigrationAction(
            source=source.name, destination=destination.name,
            node_ids=tuple(sorted(node_ids)), polygons=moved, reason=reason)
