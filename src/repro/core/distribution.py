"""The two workload-distribution modes.

Paper §3.2.5: "There are two approaches to workload distribution: dataset
distribution and framebuffer distribution."

**Dataset distribution** (:class:`DatasetDistributor`): the data service
hands each render service a subset of the scene tree (with ancestor chain
and the client camera), each renders its subset with the shared camera,
and the client's service depth-composites the framebuffers.  Oversized
mesh nodes are *exploded* into spatial pieces so assignments can match
per-service budgets at fine grain.

**Framebuffer distribution** (:class:`FramebufferDistributor`): the
requesting service splits its target framebuffer into tiles, keeps one,
and farms the rest out to assistants, which render to off-screen buffers
forwarded "directly to the requesting render service".  Tile areas are
sized proportionally to each service's capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cost import NodeCost, node_cost
from repro.errors import SceneGraphError
from repro.render.framebuffer import Tile
from repro.scenegraph.nodes import GroupNode, MeshNode, SceneNode
from repro.scenegraph.tree import SceneTree


# --------------------------------------------------------------------------
# dataset distribution
# --------------------------------------------------------------------------


@dataclass
class DistributionPlan:
    """Which node ids go to which render service."""

    #: service name → set of node ids it is responsible for
    shares: dict[str, set[int]] = field(default_factory=dict)
    #: service name → assigned cost
    costs: dict[str, NodeCost] = field(default_factory=dict)
    #: node ids created by exploding oversized meshes
    exploded: list[int] = field(default_factory=list)

    @property
    def n_services(self) -> int:
        return len(self.shares)

    def share_of(self, service_name: str) -> set[int]:
        return self.shares.get(service_name, set())


def explode_mesh_node(tree: SceneTree, node_id: int,
                      n_parts: int) -> list[int]:
    """Replace one mesh node by a group of spatially-split sub-meshes.

    Returns the new leaf node ids.  The group keeps the original node's id
    so existing interests/assignments keep working.
    """
    node = tree.node(node_id)
    if not isinstance(node, MeshNode):
        raise SceneGraphError(f"node {node_id} is not a mesh")
    if n_parts < 2:
        return [node_id]
    pieces = node.mesh.split_spatially(n_parts)
    parent = node.parent
    if parent is None:
        raise SceneGraphError("cannot explode the root")
    tree.remove(node)
    group = GroupNode(name=f"{node.name}:exploded")
    tree.add(group, parent=parent, node_id=node_id)
    new_ids = []
    for i, piece in enumerate(pieces):
        child = MeshNode(piece, name=f"{node.name}:part{i}")
        tree.add(child, parent=group)
        new_ids.append(child.node_id)
    return new_ids


class DatasetDistributor:
    """Plan scene-subset assignments against per-service polygon budgets."""

    def __init__(self, max_grain_polygons: int = 50_000) -> None:
        #: meshes larger than this are exploded for fine-grain assignment
        self.max_grain_polygons = max_grain_polygons

    @staticmethod
    def _polygon_equivalent(node: SceneNode) -> int:
        """Render weight in polygon units: points cost ~1/3 polygon each
        (capacity quotes point throughput at 3x the triangle rate)."""
        cost = node_cost(node)
        return cost.polygons + -(-cost.points // 3)

    def plan(self, tree: SceneTree, budgets: dict[str, float],
             volume_hosts: set[str] | None = None) -> DistributionPlan:
        """Assign geometry nodes to services, respecting polygon budgets.

        ``budgets`` maps service name → polygon budget.  Greedy
        largest-node-first into the service with the most remaining budget
        (LPT scheduling); oversized meshes are exploded first so no single
        node exceeds the largest budget or the grain limit.  Point clouds
        weigh in at a third of a polygon per point; volume nodes are only
        placed on services named in ``volume_hosts`` ("support for
        hardware assisted volume rendering" is a capacity metric).
        """
        if not budgets:
            raise ValueError("no services to distribute over")
        volumes = [n for n in tree.geometry_nodes() if n.n_voxels]
        if volumes:
            hosts = volume_hosts if volume_hosts is not None else set()
            missing = hosts - set(budgets)
            if missing:
                raise ValueError(
                    f"volume hosts {sorted(missing)} not in budgets")
            if not hosts:
                raise SceneGraphError(
                    "the scene contains volumes but no service supports "
                    "hardware volume rendering")
        total_budget = sum(budgets.values())
        demand = sum(self._polygon_equivalent(n)
                     for n in tree.geometry_nodes())
        if demand > total_budget:
            raise SceneGraphError(
                f"dataset demands {demand} polygon-equivalents but "
                f"budgets total {total_budget:.0f}")

        # Grain: parts must fit the *smallest* budget, or LPT packing can
        # strand a piece with no bin large enough.  On a packing failure
        # (fragmentation), retry at half the grain.
        positive = [b for b in budgets.values() if b > 0]
        if not positive:
            raise SceneGraphError("every service has zero budget")
        grain = min(self.max_grain_polygons, max(min(positive), 1.0))
        last_error: SceneGraphError | None = None
        exploded: list[int] = []
        for _ in range(4):
            exploded.extend(self._explode_to_grain(tree, int(grain)))
            plan = self._assign(tree, budgets, volume_hosts or set())
            if plan is not None:
                plan.exploded = exploded
                return plan
            last_error = SceneGraphError(
                f"could not pack dataset at grain {grain:.0f}")
            grain = max(1.0, grain / 2)
        raise last_error  # pragma: no cover - needs adversarial budgets

    def _explode_to_grain(self, tree: SceneTree, grain: int) -> list[int]:
        created: list[int] = []
        for node in list(tree.geometry_nodes()):
            if isinstance(node, MeshNode) and node.n_polygons > grain:
                n_parts = int(np.ceil(node.n_polygons / grain))
                created.extend(
                    explode_mesh_node(tree, node.node_id, n_parts))
        return created

    def _assign(self, tree: SceneTree, budgets: dict[str, float],
                volume_hosts: set[str]) -> DistributionPlan | None:
        """LPT packing; None when fragmentation defeats it at this grain."""
        plan = DistributionPlan(
            shares={name: set() for name in budgets},
            costs={name: NodeCost() for name in budgets})
        leaves = list(tree.geometry_nodes())
        leaves.sort(key=lambda n: -self._polygon_equivalent(n))
        remaining = dict(budgets)
        for node in leaves:
            cost = node_cost(node)
            weight = self._polygon_equivalent(node)
            if cost.voxels:
                # volumes go to the volume-capable service with the most
                # remaining budget (voxel work is fill-bound, not counted
                # against the polygon budget)
                candidates = {k: remaining[k] for k in volume_hosts}
                if not candidates:
                    return None
                name = max(candidates, key=lambda k: candidates[k])
            else:
                name = max(remaining, key=lambda k: remaining[k])
                if weight > remaining[name] + 1e-9:
                    return None
                remaining[name] -= weight
            plan.shares[name].add(node.node_id)
            plan.costs[name] = plan.costs[name] + cost
        return plan

    def subtree_for(self, tree: SceneTree, plan: DistributionPlan,
                    service_name: str, camera=None) -> SceneTree:
        """Extract the self-contained subtree for one service's share."""
        ids = sorted(plan.share_of(service_name))
        return tree.extract_subtree(ids, camera=camera)


# --------------------------------------------------------------------------
# framebuffer distribution
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TileAssignment:
    tile: Tile
    service_name: str
    #: True for the requester's locally-rendered tile
    local: bool


@dataclass
class TilePlan:
    width: int
    height: int
    assignments: list[TileAssignment] = field(default_factory=list)

    @property
    def tiles(self) -> list[Tile]:
        return [a.tile for a in self.assignments]

    def tiles_of(self, service_name: str) -> list[Tile]:
        return [a.tile for a in self.assignments
                if a.service_name == service_name]


class FramebufferDistributor:
    """Split a target framebuffer into capacity-proportional column tiles.

    Columns (full-height vertical strips) keep the assembly trivial and
    match the paper's two-tile galleon demonstration; the requester always
    takes the first strip ("a single tile is rendered locally, whilst the
    remaining tiles are rendered remotely").
    """

    def plan(self, width: int, height: int, local_service: str,
             assistants: dict[str, float],
             local_share: float | None = None) -> TilePlan:
        """``assistants`` maps service name → relative capacity weight."""
        if width <= 0 or height <= 0:
            raise ValueError("target size must be positive")
        if any(w <= 0 for w in assistants.values()):
            raise ValueError("assistant weights must be positive")
        weights: list[tuple[str, float, bool]] = []
        local_w = (local_share if local_share is not None
                   else (sum(assistants.values()) / max(1, len(assistants))
                         if assistants else 1.0))
        weights.append((local_service, local_w, True))
        for name, w in assistants.items():
            weights.append((name, w, False))
        total = sum(w for _, w, _ in weights)
        # proportional column split with rounding correction
        edges = [0]
        acc = 0.0
        for _, w, _ in weights:
            acc += w
            edges.append(int(round(width * acc / total)))
        edges[-1] = width
        plan = TilePlan(width=width, height=height)
        for (name, _, is_local), x0, x1 in zip(weights, edges[:-1],
                                               edges[1:]):
            if x1 <= x0:
                raise ValueError(
                    f"tile for {name!r} would be empty; fewer assistants "
                    "or a wider target needed")
            plan.assignments.append(TileAssignment(
                tile=Tile(x0=x0, y0=0, width=x1 - x0, height=height),
                service_name=name, local=is_local))
        return plan

    def plan_grid(self, width: int, height: int, nx: int, ny: int,
                  local_service: str,
                  assistants: dict[str, float],
                  local_share: float | None = None) -> TilePlan:
        """An ``nx x ny`` tile grid with capacity-weighted assignment.

        Finer than column strips: each service receives a number of grid
        cells proportional to its weight (largest-remainder rounding), the
        local service taking the first cells.  Useful when per-tile render
        cost varies across the image (the grid averages hot spots out).
        """
        from repro.render.framebuffer import split_tiles

        tiles = split_tiles(width, height, nx, ny)
        weights: list[tuple[str, float, bool]] = []
        local_w = (local_share if local_share is not None
                   else (sum(assistants.values()) / max(1, len(assistants))
                         if assistants else 1.0))
        weights.append((local_service, local_w, True))
        for name, w in assistants.items():
            if w <= 0:
                raise ValueError("assistant weights must be positive")
            weights.append((name, w, False))
        total_w = sum(w for _, w, _ in weights)
        n_tiles = len(tiles)
        # largest-remainder apportionment; everyone keeps >= 1 tile
        exact = [n_tiles * w / total_w for _, w, _ in weights]
        counts = [max(1, int(e)) for e in exact]
        while sum(counts) > n_tiles:
            k = max(range(len(counts)),
                    key=lambda i: (counts[i] - exact[i], counts[i]))
            if counts[k] <= 1:
                raise ValueError(
                    f"grid of {n_tiles} tiles cannot give every one of "
                    f"{len(weights)} services a tile")
            counts[k] -= 1
        remainders = [(e - int(e), i) for i, e in enumerate(exact)]
        for _, i in sorted(remainders, reverse=True):
            if sum(counts) >= n_tiles:
                break
            counts[i] += 1

        plan = TilePlan(width=width, height=height)
        cursor = 0
        for (name, _, is_local), count in zip(weights, counts):
            for tile in tiles[cursor:cursor + count]:
                plan.assignments.append(TileAssignment(
                    tile=tile, service_name=name, local=is_local))
            cursor += count
        return plan
