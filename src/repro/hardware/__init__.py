"""Hardware profiles of the paper's testbed (§4.4)."""

from repro.hardware.profiles import (
    MachineProfile,
    PdaClientProfile,
    TESTBED,
    get_profile,
)

__all__ = ["MachineProfile", "PdaClientProfile", "TESTBED", "get_profile"]
