"""Machine profiles for the paper's testbed.

§4.4: "Our resources are an SGI Onyx 3000 with 32 CPUs and three Infinite
Reality graphics pipelines, a Sun Microsystems Inc. V880z with XVR4000, an
Intel Centrino 1.6GHz laptop with nVidia GeForce2 420 Go graphics, a dual
2.4GHz Xeon desktop with nVidia FX3000G graphics, an AMD Athlon 1.2GHz
desktop with nVidia GeForce2 GTS, and a Sharp Zaurus PDA."

Each profile holds the parameters of the render-engine timing model (see
:mod:`repro.render.engine`):

- on-screen frame time ``T = frame_setup + polys / polygon_rate +
  pixels / fill_rate``;
- hardware off-screen adds ``offscreen_fixed + pixels *
  offscreen_pixel_cost`` (Java3D's render-request/poll/copy path), an
  overhead that *overlaps* across interleaved outstanding requests;
- machines whose Java3D off-screen path falls back to software rendering
  (the paper suspects this of the XVR-4000: "possibly indicate off-screen
  rendering is carried out in software") instead re-render at
  ``software_polygon_rate`` / ``software_fill_rate``.

Calibration provenance (constants below are FIT to the paper, not read by
policy code):

- Centrino/GeForce2-420Go polygon rate: Table 2 render times (0.091 s for
  0.83 M polys, 0.355 s for 2.8 M) bracket 7.5-9.1 M polys/s → 8.4e6.
- Centrino off-screen overhead: solving Table 3/4's Elle+Galleon
  percentage pairs for ``C = K + pixels*k`` gives K ≈ 2.9 ms,
  k ≈ 57 ns/pixel (consistent across 400² and 200² within the paper's
  measurement noise).
- Athlon/GTS: same procedure on its column → K ≈ 3.8 ms, k ≈ 23 ns/pixel,
  polygon rate 11e6.
- V880z/XVR-4000: Table 3's 3 % for Elle implies a ~0.45 M polys/s
  software path (the Galleon cell is not consistent with any single
  rate — recorded as a deviation in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineProfile:
    """Render/CPU capability description of one testbed machine."""

    name: str
    description: str
    #: CPU speed relative to the Centrino 1.6 GHz reference (marshalling etc.)
    cpu_factor: float
    #: sustained triangles/second through Java3D on-screen
    polygon_rate: float
    #: pixels/second fill
    fill_rate: float
    #: fixed per-frame setup seconds
    frame_setup: float
    #: texture memory in bytes (a capacity metric the data service queries)
    texture_memory: int
    #: hardware-assisted volume rendering available
    volume_support: bool
    #: number of independent graphics pipes (Onyx has 3)
    graphics_pipes: int = 1
    #: off-screen path: "hardware" or "software"
    offscreen_mode: str = "hardware"
    #: fixed off-screen overhead per frame (hardware mode), seconds
    offscreen_fixed: float = 0.0
    #: off-screen overhead per pixel (buffer create/copy/readback), seconds
    offscreen_pixel_cost: float = 0.0
    #: non-overlappable fraction of the off-screen overhead when interleaved
    offscreen_serial_fraction: float = 0.0
    #: software-fallback rates (used when offscreen_mode == "software")
    software_polygon_rate: float = 0.0
    software_fill_rate: float = 0.0
    software_frame_setup: float = 0.0
    #: display refresh (on-screen frame rate ceiling), Hz
    refresh_hz: float = 0.0

    def __post_init__(self) -> None:
        if self.cpu_factor <= 0:
            raise ValueError(f"{self.name}: cpu_factor must be positive")
        if self.offscreen_mode not in ("hardware", "software", "none"):
            raise ValueError(
                f"{self.name}: bad offscreen_mode {self.offscreen_mode!r}")
        if (self.offscreen_mode == "software"
                and self.software_polygon_rate <= 0):
            raise ValueError(
                f"{self.name}: software offscreen needs software rates")

    @property
    def can_render(self) -> bool:
        return self.polygon_rate > 0


@dataclass(frozen=True)
class PdaClientProfile:
    """Thin-client device profile (the Sharp Zaurus).

    The paper's J2ME finding: sending an image "manually (by sending each
    pixel one at a time ...) took over two minutes to send a single frame",
    while the C/C++ client casting the byte array into the image format
    takes "approximately 0.2s to receive and blit" — of which transfer is
    ~0.19 s, so the blit itself is tens of milliseconds.
    """

    name: str
    display_width: int
    display_height: int
    #: per-pixel Java (J2ME boxed) image conversion, seconds/pixel
    j2me_seconds_per_pixel: float
    #: C/C++ pointer-cast blit, seconds/byte (effectively memcpy + paint)
    cpp_seconds_per_byte: float
    #: fixed GUI/present overhead per frame, seconds
    present_fixed: float

    def blit_seconds(self, width: int, height: int,
                     path: str = "cpp") -> float:
        """Client-side time to convert+paint one RGB frame."""
        pixels = width * height
        if path == "cpp":
            return self.present_fixed + pixels * 3 * self.cpp_seconds_per_byte
        if path == "j2me":
            return self.present_fixed + pixels * self.j2me_seconds_per_pixel
        raise ValueError(f"unknown blit path {path!r}")


#: the six testbed machines (+ a generic immersive display host)
TESTBED: dict[str, MachineProfile] = {
    "onyx": MachineProfile(
        name="onyx",
        description="SGI Onyx 3000, 32 CPUs, 3x InfiniteReality pipes",
        cpu_factor=0.8,
        polygon_rate=13e6,
        fill_rate=2.6e9,
        frame_setup=5e-4,
        texture_memory=1024 * 2**20,
        volume_support=True,
        graphics_pipes=3,
        offscreen_mode="hardware",
        offscreen_fixed=2.0e-3,
        offscreen_pixel_cost=40e-9,
        refresh_hz=72.0,
    ),
    "v880z": MachineProfile(
        name="v880z",
        description="Sun Fire V880z, UltraSPARC III 900 MHz, XVR-4000",
        cpu_factor=0.75,
        polygon_rate=15e6,
        fill_rate=2.0e9,
        frame_setup=4e-4,
        texture_memory=256 * 2**20,
        volume_support=True,
        offscreen_mode="software",   # the paper's suspected Java3D fallback
        offscreen_pixel_cost=60e-9,
        software_polygon_rate=0.45e6,
        software_fill_rate=30e6,
        software_frame_setup=1.5e-3,
        refresh_hz=76.0,
    ),
    "centrino": MachineProfile(
        name="centrino",
        description="Intel Centrino 1.6 GHz laptop, GeForce2 420 Go",
        cpu_factor=1.0,
        polygon_rate=8.4e6,
        fill_rate=1.2e9,
        frame_setup=4.05e-4,
        texture_memory=32 * 2**20,
        volume_support=False,
        offscreen_mode="hardware",
        offscreen_fixed=2.95e-3,
        offscreen_pixel_cost=57e-9,
        refresh_hz=60.0,
    ),
    "xeon": MachineProfile(
        name="xeon",
        description="Dual 2.4 GHz Xeon desktop, nVidia FX3000G",
        cpu_factor=1.5,
        polygon_rate=40e6,
        fill_rate=3.2e9,
        frame_setup=3e-4,
        texture_memory=256 * 2**20,
        volume_support=True,
        offscreen_mode="hardware",
        offscreen_fixed=1.8e-3,
        offscreen_pixel_cost=20e-9,
        refresh_hz=85.0,
    ),
    "athlon": MachineProfile(
        name="athlon",
        description="AMD Athlon 1.2 GHz desktop, GeForce2 GTS",
        cpu_factor=0.75,
        polygon_rate=11e6,
        fill_rate=1.6e9,
        frame_setup=3.5e-4,
        texture_memory=32 * 2**20,
        volume_support=False,
        offscreen_mode="hardware",
        offscreen_fixed=3.8e-3,
        offscreen_pixel_cost=23e-9,
        refresh_hz=75.0,
    ),
    "zaurus": MachineProfile(
        name="zaurus",
        description="Sharp Zaurus PDA (Linux), thin client only",
        cpu_factor=0.05,
        polygon_rate=0.0,
        fill_rate=0.0,
        frame_setup=0.0,
        texture_memory=0,
        volume_support=False,
        offscreen_mode="none",
    ),
    "workwall": MachineProfile(
        name="workwall",
        description="FakeSpace Portico rear-projection stereo Workwall host",
        cpu_factor=1.2,
        polygon_rate=26e6,
        fill_rate=3.0e9,
        frame_setup=4e-4,
        texture_memory=256 * 2**20,
        volume_support=True,
        graphics_pipes=2,
        offscreen_mode="hardware",
        offscreen_fixed=2.2e-3,
        offscreen_pixel_cost=30e-9,
        refresh_hz=96.0,
    ),
}

#: the Zaurus client-side profile
ZAURUS_CLIENT = PdaClientProfile(
    name="zaurus",
    display_width=640,
    display_height=480,
    # >2 minutes for a 200x200 image → ≈ 3.1 ms/pixel through boxed J2ME IO
    j2me_seconds_per_pixel=3.1e-3,
    # 0.2 s receive+blit at ~0.19 s transfer → ~10 ms blit for 120 kB
    cpp_seconds_per_byte=8.5e-8,
    # Table 2's "other overheads" residual (47-49 ms) minus the SOAP
    # request and the cast-blit is ~35 ms of GUI event/paint work on the
    # 206 MHz StrongARM — charged as the fixed present cost
    present_fixed=3.4e-2,
)


def get_profile(name: str) -> MachineProfile:
    """Look up a testbed machine profile by name."""
    try:
        return TESTBED[name]
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; testbed: {sorted(TESTBED)}"
        ) from None
