"""RGB565 quantization: fixed 2 bytes/pixel, lossy but bounded error.

The workhorse for mid-quality wireless links — a guaranteed 1.5x reduction
with ≤ 8 levels of rounding error per channel, decodable on a PDA with two
shifts and a mask (the pointer-cast-friendly layout the paper's C++ client
wants).
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Codec, EncodedFrame
from repro.errors import DataFormatError
from repro.render.framebuffer import FrameBuffer


class Rgb565Codec(Codec):
    """Lossy 16-bit quantization: fixed 2 bytes/pixel, error <= 8/channel."""

    NAME = "rgb565"
    LOSSLESS = False
    ENCODE_SECONDS_PER_BYTE = 2.5e-8
    DECODE_SECONDS_PER_BYTE = 2.5e-8

    def _encode(self, fb: FrameBuffer) -> tuple[bytes, dict]:
        c = fb.color.astype(np.uint16)
        packed = (((c[..., 0] >> 3) << 11)
                  | ((c[..., 1] >> 2) << 5)
                  | (c[..., 2] >> 3)).astype("<u2")
        return packed.tobytes(), {}

    def _decode(self, frame: EncodedFrame) -> np.ndarray:
        expected = frame.width * frame.height * 2
        if len(frame.data) != expected:
            raise DataFormatError(
                f"RGB565 frame has {len(frame.data)} bytes, expected "
                f"{expected}")
        packed = np.frombuffer(frame.data, dtype="<u2").reshape(
            frame.height, frame.width)
        out = np.empty((frame.height, frame.width, 3), dtype=np.uint8)
        # replicate high bits into low bits so white stays white
        r = (packed >> 11) & 0x1F
        g = (packed >> 5) & 0x3F
        b = packed & 0x1F
        out[..., 0] = ((r << 3) | (r >> 2)).astype(np.uint8)
        out[..., 1] = ((g << 2) | (g >> 4)).astype(np.uint8)
        out[..., 2] = ((b << 3) | (b >> 2)).astype(np.uint8)
        return out
