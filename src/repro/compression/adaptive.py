"""The adaptive compression controller.

"Wireless network bandwidth is shared between other network users, and is
proportional to signal quality ... We need a compression algorithm that can
adapt on the fly to changing network conditions."  (paper §5.1)

:class:`BandwidthEstimator` tracks goodput from observed transfers (EWMA);
:class:`AdaptiveCodec` picks, per frame, the cheapest codec whose expected
wire time meets the latency budget, preferring lossless when the link
affords it:

    raw  →  delta  →  rle  →  rgb565  →  rgb565-over-delta

The choice is re-evaluated every frame, so a user walking away from the
access point (dropping signal quality) degrades smoothly instead of
stalling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.base import Codec, EncodedFrame, RawCodec
from repro.compression.delta import DeltaCodec
from repro.compression.quantize import Rgb565Codec
from repro.compression.rle import RleCodec
from repro.errors import DataFormatError
from repro.obs import active as _obs
from repro.render.framebuffer import FrameBuffer


class BandwidthEstimator:
    """EWMA goodput estimate from (nbytes, seconds) observations.

    ``initial_bps`` is only a stand-in until the first real transfer is
    seen: the first observation *replaces* it outright rather than being
    blended in, because EWMA warm-up against an arbitrary prior can
    mis-pick codecs for many frames on links much slower than the prior.
    """

    def __init__(self, initial_bps: float = 4.8e6,
                 alpha: float = 0.3) -> None:
        if initial_bps <= 0:
            raise ValueError("initial bandwidth must be positive")
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.bps = initial_bps
        self.alpha = alpha
        self.observations = 0

    def observe(self, nbytes: int, seconds: float) -> None:
        if seconds <= 0 or nbytes <= 0:
            return
        sample = nbytes * 8.0 / seconds
        if self.observations == 0:
            # snap to the first measurement: the prior carries no signal
            self.bps = sample
        else:
            self.bps = self.alpha * sample + (1 - self.alpha) * self.bps
        self.observations += 1
        obs = _obs()
        if obs.enabled:
            obs.metrics.gauge("rave_bandwidth_estimate_bps",
                              "EWMA goodput estimate").set(self.bps)

    def expected_seconds(self, nbytes: int) -> float:
        return nbytes * 8.0 / self.bps


@dataclass
class AdaptiveChoice:
    codec_name: str
    expected_wire_seconds: float
    budget_seconds: float


class AdaptiveCodec(Codec):
    """Meta-codec delegating to the best child codec per frame."""

    NAME = "adaptive"
    LOSSLESS = False  # may choose a lossy child under pressure

    def __init__(self, estimator: BandwidthEstimator | None = None,
                 latency_budget: float = 0.25,
                 cpu_factor: float = 1.0) -> None:
        super().__init__(cpu_factor)
        self.estimator = estimator or BandwidthEstimator()
        self.latency_budget = latency_budget
        self._raw = RawCodec(cpu_factor)
        self._delta = DeltaCodec(cpu_factor)
        self._rle = RleCodec(cpu_factor)
        self._rgb565 = Rgb565Codec(cpu_factor)
        self._lossy_delta = DeltaCodec(cpu_factor, tolerance=12)
        self._children: dict[str, Codec] = {
            c.NAME: c for c in (self._raw, self._delta, self._rle,
                                self._rgb565, self._lossy_delta)}
        self.choices: list[AdaptiveChoice] = []

    def reset(self) -> None:
        self._delta.reset()
        self._lossy_delta.reset()

    def encode(self, fb: FrameBuffer) -> EncodedFrame:
        budget = self.latency_budget
        # Candidate order: lossless first, then progressively lossy.
        # Delta and RLE sizes are content-dependent — encode and check.
        # Stateful (delta) codecs must only advance their reference when
        # actually chosen, or the decoder's mirror state desynchronises —
        # snapshot and restore the losers afterwards.
        delta_state = (self._delta._reference_enc,
                       self._lossy_delta._reference_enc)
        candidates: list[EncodedFrame] = []
        raw = self._raw.encode(fb)
        if self.estimator.expected_seconds(raw.nbytes) <= budget:
            chosen = raw
        else:
            candidates.append(self._delta.encode(fb))
            candidates.append(self._rle.encode(fb))
            candidates.append(self._rgb565.encode(fb))
            fitting = [c for c in candidates
                       if self.estimator.expected_seconds(c.nbytes) <= budget]
            if fitting:
                # prefer lossless among those that fit, then smallest
                fitting.sort(key=lambda c: (not c.lossless, c.nbytes))
                chosen = fitting[0]
            else:
                # last resort: tolerant delta (smallest thing we have)
                lossy = self._lossy_delta.encode(fb)
                candidates.append(lossy)
                chosen = min(candidates, key=lambda c: c.nbytes)
        if chosen.codec != self._delta.NAME:
            self._delta._reference_enc = delta_state[0]
        if chosen.codec != self._lossy_delta.NAME:
            self._lossy_delta._reference_enc = delta_state[1]
        # Seed the delta references from the frame the receiver will
        # actually hold (its decoded view), whatever codec carried it —
        # so the very next frame can be a delta even after a key/lossy
        # frame.  The decoder mirrors this in decode().
        receiver_view = self._receiver_view(chosen)
        self._delta._reference_enc = receiver_view
        self._lossy_delta._reference_enc = receiver_view
        wrapped = EncodedFrame(
            codec=self.NAME, data=chosen.data, width=chosen.width,
            height=chosen.height, encode_seconds=chosen.encode_seconds,
            lossless=chosen.lossless,
            meta={**chosen.meta, "inner": chosen.codec})
        expected_wire = self.estimator.expected_seconds(chosen.nbytes)
        self.choices.append(AdaptiveChoice(
            codec_name=chosen.codec,
            expected_wire_seconds=expected_wire,
            budget_seconds=budget))
        obs = _obs()
        if obs.enabled:
            m = obs.metrics
            m.counter("rave_codec_frames_total", "frames per chosen codec",
                      codec=chosen.codec).inc()
            m.counter("rave_codec_encoded_bytes_total",
                      "bytes after compression",
                      codec=chosen.codec).inc(chosen.nbytes)
            m.counter("rave_codec_bytes_saved_total",
                      "raw bytes minus encoded bytes"
                      ).inc(max(0, chosen.raw_nbytes - chosen.nbytes))
            if expected_wire > budget:
                m.counter("rave_codec_budget_misses_total",
                          "frames whose best encoding still blows the "
                          "latency budget").inc()
        return wrapped

    def _receiver_view(self, chosen: EncodedFrame):
        """The pixel state the receiver holds after this frame, flattened.

        Exact for lossless codecs; for lossy ones the encoder re-decodes
        its own output so both sides agree bit-for-bit.
        """
        child = self._children[chosen.codec]
        if chosen.codec.startswith("delta"):
            # the delta codec's own reference already equals the
            # receiver's post-apply state
            return child._reference_enc
        fb, _ = child.decode(chosen, chosen.width, chosen.height)
        return fb.color.reshape(-1, 3).copy()

    def decode(self, frame: EncodedFrame, width: int, height: int
               ) -> tuple[FrameBuffer, float]:
        if frame.codec != self.NAME:
            raise DataFormatError(
                f"adaptive codec cannot decode {frame.codec!r} frames")
        inner_name = frame.meta.get("inner")
        child = self._children.get(inner_name)
        if child is None:
            raise DataFormatError(f"unknown inner codec {inner_name!r}")
        inner = EncodedFrame(codec=inner_name, data=frame.data,
                             width=frame.width, height=frame.height,
                             encode_seconds=frame.encode_seconds,
                             lossless=frame.lossless, meta=frame.meta)
        fb, cpu = child.decode(inner, width, height)
        # mirror the encoder: any decoded frame becomes the delta reference
        flat = fb.color.reshape(-1, 3).copy()
        self._delta._reference_dec = flat
        self._lossy_delta._reference_dec = flat
        return fb, cpu
