"""Run-length coding of RGB frames.

Rendered frames have long runs (background, flat-shaded surfaces), so RLE
is the classic cheap lossless choice for 2004-era CPUs.  Encoding is
vectorized: pixels pack into uint32 keys, run boundaries come from one
``np.nonzero(diff)``, and the output is (run length u16, RGB) records.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compression.base import Codec, EncodedFrame
from repro.errors import DataFormatError
from repro.render.framebuffer import FrameBuffer

_MAX_RUN = 0xFFFF


class RleCodec(Codec):
    """Lossless run-length codec: (run length u16, RGB) records."""

    NAME = "rle"
    LOSSLESS = True
    ENCODE_SECONDS_PER_BYTE = 4e-8
    DECODE_SECONDS_PER_BYTE = 3e-8

    def _encode(self, fb: FrameBuffer) -> tuple[bytes, dict]:
        flat = fb.color.reshape(-1, 3).astype(np.uint32)
        keys = (flat[:, 0] << 16) | (flat[:, 1] << 8) | flat[:, 2]
        boundaries = np.nonzero(np.diff(keys))[0] + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [len(keys)]])
        lengths = ends - starts
        # split runs longer than the u16 limit
        n_splits = (lengths - 1) // _MAX_RUN
        if n_splits.any():
            new_starts = []
            new_lengths = []
            for s, ln in zip(starts, lengths):
                while ln > _MAX_RUN:
                    new_starts.append(s)
                    new_lengths.append(_MAX_RUN)
                    s += _MAX_RUN
                    ln -= _MAX_RUN
                new_starts.append(s)
                new_lengths.append(ln)
            starts = np.asarray(new_starts)
            lengths = np.asarray(new_lengths)
        rec = np.empty(len(starts),
                       dtype=np.dtype([("run", "<u2"), ("rgb", "u1", 3)]))
        rec["run"] = lengths
        rec["rgb"] = fb.color.reshape(-1, 3)[starts]
        header = struct.pack("<I", len(rec))
        return header + rec.tobytes(), {"runs": int(len(rec))}

    def _decode(self, frame: EncodedFrame) -> np.ndarray:
        if len(frame.data) < 4:
            raise DataFormatError("RLE frame shorter than its header")
        (n_runs,) = struct.unpack_from("<I", frame.data)
        rec_dtype = np.dtype([("run", "<u2"), ("rgb", "u1", 3)])
        body = frame.data[4:]
        if len(body) != n_runs * rec_dtype.itemsize:
            raise DataFormatError(
                f"RLE frame body is {len(body)} bytes for {n_runs} runs")
        rec = np.frombuffer(body, dtype=rec_dtype)
        total = int(rec["run"].sum())
        if total != frame.width * frame.height:
            raise DataFormatError(
                f"RLE runs cover {total} pixels, expected "
                f"{frame.width * frame.height}")
        colors = np.repeat(rec["rgb"], rec["run"], axis=0)
        return colors.reshape(frame.height, frame.width, 3)
