"""Inter-frame delta coding.

Interactive navigation changes only part of the image between frames (the
model moves, the background stays).  The encoder keeps the last acknowledged
frame per stream and sends only changed pixels as (index u32, RGB) records,
falling back to a key frame when the delta would be larger than raw.
Decoder state mirrors the encoder's, so streams must decode in order.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compression.base import Codec, EncodedFrame
from repro.errors import DataFormatError
from repro.render.framebuffer import FrameBuffer

_KEY = 0
_DELTA = 1


class DeltaCodec(Codec):
    """Inter-frame delta codec: changed pixels only, key frame fallback.

    Stateful — encoder and decoder each track the last frame, so a stream
    must decode in order.  ``tolerance > 0`` makes it lossy (small
    per-channel changes are suppressed) and renames the codec so decode
    routing stays unambiguous.  On the lossy path both sides track the
    *receiver's* post-apply state, which bounds the per-pixel error at
    ``tolerance`` for the whole stream instead of letting it drift.
    """

    NAME = "delta"
    LOSSLESS = True
    ENCODE_SECONDS_PER_BYTE = 3e-8
    DECODE_SECONDS_PER_BYTE = 2.5e-8

    def __init__(self, cpu_factor: float = 1.0,
                 tolerance: int = 0) -> None:
        super().__init__(cpu_factor)
        #: per-channel difference below which a pixel counts as unchanged
        #: (0 = exact; >0 trades loss for ratio)
        self.tolerance = int(tolerance)
        if tolerance > 0:
            # Stateful codecs are routed by name at decode time, so the
            # tolerant variant must be distinguishable from the exact one.
            self.NAME = f"delta~{tolerance}"
            self.LOSSLESS = False
        self._reference_enc: np.ndarray | None = None
        self._reference_dec: np.ndarray | None = None

    def reset(self) -> None:
        """Forget stream state (forces the next frame to be a key frame)."""
        self._reference_enc = None
        self._reference_dec = None

    def _encode(self, fb: FrameBuffer) -> tuple[bytes, dict]:
        flat = fb.color.reshape(-1, 3)
        ref = self._reference_enc
        if ref is not None and ref.shape == flat.shape:
            diff = np.abs(flat.astype(np.int16) - ref.astype(np.int16))
            changed = (diff > self.tolerance).any(axis=1)
            idx = np.nonzero(changed)[0]
            delta_bytes = 5 + len(idx) * 7
            if delta_bytes < flat.nbytes:
                rec = np.empty(len(idx), dtype=np.dtype(
                    [("i", "<u4"), ("rgb", "u1", 3)]))
                rec["i"] = idx
                rec["rgb"] = flat[idx]
                # The decoder applies only the above-tolerance pixels, so
                # the encoder's reference must be the receiver's post-apply
                # state — not the true frame.  Storing the true frame here
                # made the two references diverge under tolerance > 0 and
                # the error accumulate frame over frame.
                new_ref = ref.copy()
                new_ref[idx] = flat[idx]
                self._reference_enc = new_ref
                return (struct.pack("<BI", _DELTA, len(idx))
                        + rec.tobytes(), {"changed": int(len(idx))})
        self._reference_enc = flat.copy()
        return (struct.pack("<BI", _KEY, 0) + flat.tobytes(),
                {"changed": int(len(flat))})

    def _decode(self, frame: EncodedFrame) -> np.ndarray:
        if len(frame.data) < 5:
            raise DataFormatError("delta frame shorter than its header")
        kind, count = struct.unpack_from("<BI", frame.data)
        body = frame.data[5:]
        n_pixels = frame.width * frame.height
        if kind == _KEY:
            if len(body) != n_pixels * 3:
                raise DataFormatError("key frame has wrong payload size")
            flat = np.frombuffer(body, dtype=np.uint8).reshape(-1, 3).copy()
        elif kind == _DELTA:
            if self._reference_dec is None:
                raise DataFormatError(
                    "delta frame received before any key frame")
            rec_dtype = np.dtype([("i", "<u4"), ("rgb", "u1", 3)])
            if len(body) != count * rec_dtype.itemsize:
                raise DataFormatError("delta frame has wrong payload size")
            rec = np.frombuffer(body, dtype=rec_dtype)
            if count and rec["i"].max() >= n_pixels:
                raise DataFormatError("delta frame indexes out of range")
            flat = self._reference_dec.copy()
            flat[rec["i"]] = rec["rgb"]
        else:
            raise DataFormatError(f"unknown delta frame kind {kind}")
        self._reference_dec = flat
        return flat.reshape(frame.height, frame.width, 3)
