"""Framebuffer compression codecs.

Paper §6: "Image compression methods are presently being investigated;
these are required for the render work distribution and for transmission to
thin clients.  Special attention is required for the thin client, as it may
use a wireless network whose bandwidth is both low and highly variable ...
We need a compression algorithm that can adapt on the fly to changing
network conditions."

Implemented codecs (all real encoders/decoders over the actual pixels):

- :mod:`repro.compression.rle` — run-length coding (flat-shaded frames
  compress extremely well);
- :mod:`repro.compression.quantize` — RGB565 quantization (fixed 2/3 rate);
- :mod:`repro.compression.delta` — inter-frame deltas against a reference;
- :mod:`repro.compression.adaptive` — the adaptive controller: picks the
  cheapest codec that meets a latency budget at the currently-measured
  bandwidth.
"""

from repro.compression.base import Codec, EncodedFrame, RawCodec
from repro.compression.rle import RleCodec
from repro.compression.quantize import Rgb565Codec
from repro.compression.delta import DeltaCodec
from repro.compression.adaptive import AdaptiveCodec, BandwidthEstimator

__all__ = [
    "Codec",
    "EncodedFrame",
    "RawCodec",
    "RleCodec",
    "Rgb565Codec",
    "DeltaCodec",
    "AdaptiveCodec",
    "BandwidthEstimator",
]
