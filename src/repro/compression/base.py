"""Codec protocol shared by all framebuffer compressors."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DataFormatError
from repro.render.framebuffer import FrameBuffer


@dataclass(frozen=True)
class EncodedFrame:
    """A compressed frame plus its (simulated) encode cost and metadata."""

    codec: str
    data: bytes
    width: int
    height: int
    encode_seconds: float
    lossless: bool
    meta: dict = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        return len(self.data)

    @property
    def raw_nbytes(self) -> int:
        return self.width * self.height * 3

    @property
    def ratio(self) -> float:
        """Compression ratio (raw / encoded); > 1 means smaller."""
        return self.raw_nbytes / max(1, self.nbytes)


class Codec:
    """Base codec.  Subclasses implement ``_encode`` / ``_decode`` and give
    per-byte CPU cost constants (simulated seconds, reference CPU)."""

    NAME = "base"
    LOSSLESS = True
    ENCODE_SECONDS_PER_BYTE = 2e-8
    DECODE_SECONDS_PER_BYTE = 1.5e-8

    def __init__(self, cpu_factor: float = 1.0) -> None:
        if cpu_factor <= 0:
            raise ValueError("cpu_factor must be positive")
        self.cpu_factor = cpu_factor

    # subclass surface -----------------------------------------------------------

    def _encode(self, fb: FrameBuffer) -> tuple[bytes, dict]:
        raise NotImplementedError

    def _decode(self, frame: EncodedFrame) -> np.ndarray:
        raise NotImplementedError

    # public API ----------------------------------------------------------------

    def encode(self, fb: FrameBuffer) -> EncodedFrame:
        data, meta = self._encode(fb)
        cpu = (fb.nbytes_color * self.ENCODE_SECONDS_PER_BYTE
               / self.cpu_factor)
        return EncodedFrame(codec=self.NAME, data=data, width=fb.width,
                            height=fb.height, encode_seconds=cpu,
                            lossless=self.LOSSLESS, meta=meta)

    def decode(self, frame: EncodedFrame, width: int, height: int
               ) -> tuple[FrameBuffer, float]:
        if frame.codec != self.NAME:
            raise DataFormatError(
                f"{self.NAME} codec cannot decode {frame.codec!r} frames")
        if (frame.width, frame.height) != (width, height):
            raise DataFormatError(
                f"frame is {frame.width}x{frame.height}, expected "
                f"{width}x{height}")
        color = self._decode(frame)
        if color.shape != (height, width, 3):
            raise DataFormatError(
                f"decoder produced {color.shape}, expected "
                f"{(height, width, 3)}")
        fb = FrameBuffer(width, height)
        fb.color[:] = color
        cpu = (frame.raw_nbytes * self.DECODE_SECONDS_PER_BYTE
               / self.cpu_factor)
        return fb, cpu


class RawCodec(Codec):
    """Identity codec: raw RGB bytes (what the paper ships today)."""

    NAME = "raw"
    ENCODE_SECONDS_PER_BYTE = 2e-9
    DECODE_SECONDS_PER_BYTE = 2e-9

    def _encode(self, fb: FrameBuffer) -> tuple[bytes, dict]:
        return fb.color.tobytes(), {}

    def _decode(self, frame: EncodedFrame) -> np.ndarray:
        expected = frame.raw_nbytes
        if len(frame.data) != expected:
            raise DataFormatError(
                f"raw frame has {len(frame.data)} bytes, expected {expected}")
        return np.frombuffer(frame.data, dtype=np.uint8).reshape(
            frame.height, frame.width, 3)
