"""Data-service federation: sharding sessions across data servers.

Paper §6: "Finally, we will consider the distribution of the data across
several data servers, to match our render service workload distribution.
This will alleviate any bottleneck in our system, and also support a
fail-safe mechanism, where data servers could mirror each other."

Mirroring lives in :class:`~repro.services.data_service.DataService`
(``add_mirror`` / ``failover_to``); this module adds the sharding half:

- :meth:`DataFederation.create_session` splits a scene's geometry across
  member data services (each shard is a self-contained subtree with its
  ancestor chain, exactly like render-side dataset distribution);
- :meth:`DataFederation.subscribe` bootstraps a subscriber from **all
  shards concurrently** — the marshalling bottleneck parallelises across
  data servers, which is the paper's "alleviate any bottleneck";
- :meth:`DataFederation.publish_update` routes each update to the shard
  that owns the touched nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cost import node_cost
from repro.errors import SessionError
from repro.scenegraph.tree import SceneTree
from repro.scenegraph.updates import SceneUpdate
from repro.services.data_service import BootstrapTiming, DataService


@dataclass
class ShardInfo:
    """One shard of a federated session."""

    member: DataService
    shard_session_id: str
    node_ids: set[int] = field(default_factory=set)


@dataclass
class FederatedSession:
    session_id: str
    shards: list[ShardInfo] = field(default_factory=list)

    def shard_for(self, node_id: int) -> ShardInfo:
        for shard in self.shards:
            if node_id in shard.node_ids:
                return shard
        raise SessionError(
            f"no shard owns node {node_id} in {self.session_id!r}")


class DataFederation:
    """A group of data services jointly hosting sharded sessions."""

    def __init__(self, name: str, members: list[DataService]) -> None:
        if len(members) < 1:
            raise SessionError("a federation needs at least one member")
        names = [m.name for m in members]
        if len(set(names)) != len(names):
            raise SessionError(f"duplicate member names: {names}")
        self.name = name
        self.members = list(members)
        self._sessions: dict[str, FederatedSession] = {}

    @property
    def network(self):
        return self.members[0].network

    def session(self, session_id: str) -> FederatedSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise SessionError(
                f"no federated session {session_id!r}") from None

    # -- sharding ----------------------------------------------------------------

    def create_session(self, session_id: str, tree: SceneTree,
                       charge_time: bool = False) -> FederatedSession:
        """Split a scene's geometry across the members, balanced by
        payload bytes (the bootstrap-marshalling driver)."""
        if session_id in self._sessions:
            raise SessionError(f"session {session_id!r} already exists")
        geometry = tree.geometry_nodes()
        if not geometry:
            raise SessionError("nothing to shard: the scene has no geometry")
        # greedy balance by payload bytes, largest first
        loads = [0] * len(self.members)
        assignment: list[set[int]] = [set() for _ in self.members]
        for node in sorted(geometry,
                           key=lambda n: -node_cost(n).payload_bytes):
            k = loads.index(min(loads))
            assignment[k].add(node.node_id)
            loads[k] += node_cost(node).payload_bytes

        session = FederatedSession(session_id=session_id)
        for member, ids in zip(self.members, assignment):
            if not ids:
                continue
            shard_id = f"{session_id}#{member.name}"
            shard_tree = tree.extract_subtree(sorted(ids))
            member.create_session(shard_id, shard_tree,
                                  charge_time=charge_time)
            session.shards.append(ShardInfo(
                member=member, shard_session_id=shard_id,
                node_ids=set(ids)))
        self._sessions[session_id] = session
        return session

    # -- subscription -----------------------------------------------------------------

    def subscribe(self, session_id: str, subscriber_name: str, host: str,
                  introspective: bool = True,
                  subscriber_cpu_factor: float = 1.0,
                  on_update=None) -> tuple[SceneTree, BootstrapTiming]:
        """Bootstrap from every shard concurrently; merge the subtrees.

        The returned timing reports the *parallel* critical path: shards
        marshal on their own data servers simultaneously, so the combined
        bootstrap takes max-over-shards, not sum — the federation's point.
        """
        from repro.network.clock import SimClock

        session = self.session(session_id)
        sim = self.network.sim
        real_clock = sim.clock
        merged: SceneTree | None = None
        slowest = 0.0
        totals = dict(instance=0.0, handshake=0.0, marshal=0.0,
                      transfer=0.0, demarshal=0.0)
        nbytes = 0
        try:
            for shard in session.shards:
                # each shard's work runs against a scratch clock so the
                # members genuinely proceed in parallel; the real clock
                # then advances by the critical path only
                scratch = SimClock(real_clock.now)
                sim.clock = scratch
                tree, timing = shard.member.subscribe(
                    shard.shard_session_id, subscriber_name, host,
                    introspective=introspective,
                    subscriber_cpu_factor=subscriber_cpu_factor,
                    on_update=on_update)
                slowest = max(slowest, scratch.now - real_clock.now)
                totals["handshake"] += timing.handshake_seconds
                totals["marshal"] += timing.marshal_seconds
                totals["transfer"] += timing.transfer_seconds
                totals["demarshal"] += timing.demarshal_seconds
                nbytes += timing.nbytes
                merged = (tree if merged is None
                          else _merge_trees(merged, tree))
        finally:
            sim.clock = real_clock
        real_clock.advance(slowest)
        assert merged is not None
        timing = BootstrapTiming(
            instance_seconds=0.0,
            handshake_seconds=totals["handshake"],
            marshal_seconds=totals["marshal"],
            transfer_seconds=totals["transfer"],
            demarshal_seconds=totals["demarshal"],
            nbytes=nbytes,
        )
        return merged, timing

    def parallel_bootstrap_seconds(self, session_id: str,
                                   subscriber_prefix: str,
                                   host: str) -> float:
        """Convenience: measure just the critical-path seconds of a
        fresh federated subscribe."""
        clock = self.network.sim.clock
        t0 = clock.now
        self.subscribe(session_id, f"{subscriber_prefix}-{t0}", host)
        return clock.now - t0

    # -- updates ----------------------------------------------------------------------

    def publish_update(self, session_id: str,
                       update: SceneUpdate) -> dict[str, float]:
        """Route an update to the owning shard(s)."""
        session = self.session(session_id)
        touched = update.touched_ids()
        deliveries: dict[str, float] = {}
        routed = False
        for shard in session.shards:
            if touched & shard.node_ids:
                deliveries.update(shard.member.publish_update(
                    shard.shard_session_id, update))
                routed = True
        if not routed:
            raise SessionError(
                f"update touches nodes {sorted(touched)} owned by no shard "
                f"of {session_id!r}")
        return deliveries


def _merge_trees(a: SceneTree, b: SceneTree) -> SceneTree:
    """Union of two shard subtrees of the same original scene.

    Shards preserve original node ids and ancestor chains, so merging is
    id-keyed: nodes of ``b`` missing from ``a`` are grafted under their
    (already present or also grafted) parents.
    """
    from repro.scenegraph.nodes import node_from_wire, node_to_wire

    for node in b.root.iter_subtree():
        if node is b.root or node.node_id in a:
            continue
        parent_id = node.parent.node_id  # type: ignore[union-attr]
        parent = a.root if parent_id == b.root.node_id else (
            a.node(parent_id) if parent_id in a else None)
        if parent is None:
            # parent appears later in pre-order only if b's ordering is
            # broken; extract_subtree always yields parents first
            raise SessionError(
                f"shard merge missing parent {parent_id} for node "
                f"{node.node_id}")
        clone = node_from_wire(node_to_wire(node))
        parent.add_child(clone)
        a._register(clone, node.node_id)
    return a
