"""Control-plane hardening: retries, backoff, deadlines, circuit breaking.

The paper's control plane is SOAP over the grid ("we only use Grid/Web
services for initial service discovery ... and subsequent subscription"),
and a single stalled SOAP call can wedge an entire session.  This module
gives every control-plane interaction a bounded failure mode:

- :class:`RetryPolicy` — per-attempt timeout, exponential backoff with
  seeded jitter, and an overall deadline that propagates through retries;
- :class:`CircuitBreaker` — a per-service breaker that trips after
  repeated faults, rejects calls while open, and admits a half-open probe
  after a cool-down (all on the simulated clock);
- :func:`call_with_retry` — wraps any callable in policy + breaker;
- :class:`ReliableSoapChannel` — a :class:`SoapChannel` wrapper that
  charges timeout waits and backoff sleeps to the simulated clock, treats
  fault-injected transfer loss as a timeout, and feeds the breaker.

Everything is deterministic: jitter comes from one seeded ``random.Random``
so a chaos schedule replays identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import (
    CallTimeout,
    CircuitOpenError,
    NetworkError,
    SoapFault,
    TooManyRequestsError,
)
from repro.network.transport import ChannelTiming, SoapChannel
from repro.services.soap import is_retryable_fault

#: exception types a retry loop is allowed to absorb
RETRYABLE_ERRORS = (NetworkError, CallTimeout)

#: explicit backpressure from a healthy-but-full service: never counted
#: against the circuit breaker, never worth burning retry budget on —
#: the server told us exactly when to come back (``retry_after``)
BACKPRESSURE_ERRORS = (TooManyRequestsError,)


def wait(clock, dt: float) -> None:
    """Advance simulated time by ``dt``, running any due simulator events.

    ``clock`` may be a :class:`~repro.network.clock.Simulator` (events
    scheduled during the wait — link restorations, heartbeats — fire at
    their due times) or a bare :class:`~repro.network.clock.SimClock`.
    """
    if dt <= 0:
        return
    if hasattr(clock, "run_until"):
        clock.run_until(clock.now + dt)
    else:
        clock.advance(dt)


@dataclass(frozen=True)
class RetryPolicy:
    """How a control-plane call behaves under failure.

    ``timeout_s`` bounds each attempt; ``deadline_s`` (when set) bounds the
    whole call including backoff sleeps — the deadline propagates, so a
    retry never starts after it has passed.
    """

    max_attempts: int = 4
    timeout_s: float = 2.0
    base_backoff_s: float = 0.25
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 8.0
    #: jitter fraction in [0, 1]: each backoff is scaled by a factor drawn
    #: uniformly from [1 - jitter, 1 + jitter]
    jitter: float = 0.2
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")

    def backoff_seconds(self, attempt: int, rng: random.Random) -> float:
        """Sleep before retry number ``attempt`` (1 = first retry)."""
        if attempt < 1:
            return 0.0
        base = min(self.max_backoff_s,
                   self.base_backoff_s
                   * self.backoff_multiplier ** (attempt - 1))
        scale = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return base * scale

    def remaining(self, start: float, now: float) -> float:
        """Seconds left before the overall deadline (inf when unset)."""
        if self.deadline_s is None:
            return float("inf")
        return self.deadline_s - (now - start)


class CircuitBreaker:
    """Per-service breaker: closed → open after repeated faults → half-open.

    While open, calls are rejected immediately with
    :class:`~repro.errors.CircuitOpenError` — a wedged service stops
    consuming everyone's deadlines.  After ``reset_timeout_s`` one probe
    call is admitted (half-open); success closes the breaker, failure
    re-opens it for another cool-down.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, clock, failure_threshold: int = 5,
                 reset_timeout_s: float = 30.0, name: str = "") -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.name = name
        self._failures = 0
        self._state = self.CLOSED
        self._opened_at = 0.0
        self.trips = 0

    @property
    def state(self) -> str:
        if (self._state == self.OPEN
                and self.clock.now - self._opened_at >= self.reset_timeout_s):
            return self.HALF_OPEN
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._failures

    def allow(self) -> bool:
        """May a call proceed right now?"""
        return self.state != self.OPEN

    def check(self) -> None:
        """Raise :class:`CircuitOpenError` unless a call may proceed."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit for {self.name or 'service'} is open",
                retry_at=self._opened_at + self.reset_timeout_s)

    def record_success(self) -> None:
        self._failures = 0
        self._state = self.CLOSED

    def record_failure(self) -> None:
        self._failures += 1
        if self.state == self.HALF_OPEN:
            # the probe failed: re-open for another full cool-down
            self._state = self.OPEN
            self._opened_at = self.clock.now
        elif (self._state == self.CLOSED
              and self._failures >= self.failure_threshold):
            self._state = self.OPEN
            self._opened_at = self.clock.now
            self.trips += 1


def call_with_retry(fn, policy: RetryPolicy, clock,
                    rng: random.Random | None = None,
                    breaker: CircuitBreaker | None = None,
                    retryable=RETRYABLE_ERRORS):
    """Run ``fn()`` under a retry policy on the simulated clock.

    Retryable failures are absorbed up to ``max_attempts``, with backoff
    sleeps charged to the clock; the breaker (when given) is checked before
    and informed after every attempt.  Non-retryable exceptions propagate
    immediately (after informing the breaker).
    """
    rng = rng if rng is not None else random.Random(0)
    start = clock.now
    last: Exception | None = None
    for attempt in range(1, policy.max_attempts + 1):
        if breaker is not None:
            breaker.check()
        if policy.remaining(start, clock.now) <= 0:
            raise CallTimeout(
                f"deadline of {policy.deadline_s:g}s exceeded before "
                f"attempt {attempt}",
                elapsed=clock.now - start, attempts=attempt - 1)
        try:
            result = fn()
        except BACKPRESSURE_ERRORS:
            # an explicit 429-style reject is the service working as
            # designed: surface it untouched, leave the breaker alone
            raise
        except retryable as exc:
            last = exc
            if breaker is not None:
                breaker.record_failure()
            if attempt == policy.max_attempts:
                break
            pause = policy.backoff_seconds(attempt, rng)
            pause = min(pause, max(0.0, policy.remaining(start, clock.now)))
            wait(clock, pause)
            continue
        except Exception:
            if breaker is not None:
                breaker.record_failure()
            raise
        if breaker is not None:
            breaker.record_success()
        return result
    raise CallTimeout(
        f"call failed after {policy.max_attempts} attempts: {last}",
        elapsed=clock.now - start, attempts=policy.max_attempts)


class ReliableSoapChannel:
    """A :class:`SoapChannel` with retries, timeouts and a breaker.

    Semantics per attempt:

    - the underlying channel raises :class:`NetworkError` (no route, link
      down) → the caller burns the attempt timeout waiting, then retries;
    - the fault injector loses the request or response in flight → same;
    - the response is a SOAP fault → retried only when
      :func:`~repro.services.soap.is_retryable_fault` says so, otherwise
      raised as :class:`~repro.errors.SoapFault`.

    All waits (timeouts, backoff) advance the simulated clock, so chaos
    tests measure the real cost of flaky control planes.
    """

    def __init__(self, channel: SoapChannel,
                 policy: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 seed: int = 0) -> None:
        self.channel = channel
        self.policy = policy if policy is not None else RetryPolicy()
        self.breaker = breaker
        self.rng = random.Random(seed)
        self.attempts = 0
        self.timeouts = 0

    @property
    def network(self):
        return self.channel.network

    @property
    def clock(self):
        return self.network.sim.clock

    def _lost_in_flight(self) -> bool:
        injector = self.network.fault_injector
        if injector is None:
            return False
        return (injector.roll_loss(self.channel.src, self.channel.dst)
                or injector.roll_loss(self.channel.dst, self.channel.src))

    def _attempt(self, value, response) -> tuple[object, ChannelTiming]:
        self.attempts += 1
        if self._lost_in_flight():
            # the message (or its response) vanished: the caller waits the
            # full attempt timeout before concluding anything
            wait(self.network.sim, self.policy.timeout_s)
            self.timeouts += 1
            raise CallTimeout(
                f"SOAP call {self.channel.src}->{self.channel.dst} lost "
                f"in flight", elapsed=self.policy.timeout_s, attempts=1)
        decoded, timing = self.channel.request(value, response)
        if isinstance(decoded, tuple) and len(decoded) == 2:
            operation, body = decoded
            if operation == "Fault" and isinstance(body, dict):
                fault = (body.get("code", "Receiver"),
                         body.get("reason", ""))
                if fault[0] == "TooManyRequests":
                    raise TooManyRequestsError(
                        fault[1] or "service at capacity",
                        retry_after=float(body.get("retry_after", 0.0)))
                if is_retryable_fault(fault[0]):
                    raise CallTimeout(
                        f"retryable SOAP fault: {fault[0]}: {fault[1]}")
                raise SoapFault(*fault)
        return decoded, timing

    def request(self, value, response) -> tuple[object, ChannelTiming]:
        """One reliable round trip; see class docstring for semantics."""

        def attempt():
            try:
                return self._attempt(value, response)
            except NetworkError:
                # no route / link down: the caller still waits out the
                # attempt timeout before retrying
                wait(self.network.sim, self.policy.timeout_s)
                self.timeouts += 1
                raise

        return call_with_retry(attempt, self.policy, self.network.sim,
                               rng=self.rng, breaker=self.breaker)


def reliable_request(network, src: str, dst: str, value, response,
                     policy: RetryPolicy | None = None,
                     breaker: CircuitBreaker | None = None,
                     cpu_factor: float = 1.0, seed: int = 0):
    """Convenience wrapper: one reliable SOAP round trip between hosts."""
    channel = SoapChannel(network, src, dst, cpu_factor=cpu_factor)
    reliable = ReliableSoapChannel(channel, policy=policy, breaker=breaker,
                                   seed=seed)
    return reliable.request(value, response)


class ServiceHealthLedger:
    """Shared per-service breakers + failure counts (service health state).

    One ledger per session or data service: every control-plane wrapper
    asks it for the breaker guarding the callee, so repeated faults against
    one service trip a single shared breaker rather than many private ones.
    """

    def __init__(self, clock, failure_threshold: int = 5,
                 reset_timeout_s: float = 30.0) -> None:
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker(self, service_name: str) -> CircuitBreaker:
        if service_name not in self._breakers:
            self._breakers[service_name] = CircuitBreaker(
                self.clock, failure_threshold=self.failure_threshold,
                reset_timeout_s=self.reset_timeout_s, name=service_name)
        return self._breakers[service_name]

    def healthy(self, service_name: str) -> bool:
        """Healthy = breaker closed (or never used)."""
        b = self._breakers.get(service_name)
        return b is None or b.state == CircuitBreaker.CLOSED

    def unhealthy_services(self) -> list[str]:
        return sorted(name for name, b in self._breakers.items()
                      if b.state != CircuitBreaker.CLOSED)


__all__ = [
    "RETRYABLE_ERRORS",
    "BACKPRESSURE_ERRORS",
    "RetryPolicy",
    "CircuitBreaker",
    "call_with_retry",
    "ReliableSoapChannel",
    "reliable_request",
    "ServiceHealthLedger",
]
