"""The RAVE data service.

"The data service imports data from either a static file or a live feed
... forms a persistent, central distribution point for the data to be
visualized.  Multiple sessions may be managed by the same data service ...
The data are intermittently streamed to disk, recording any changes ... in
the form of an audit trail."  (paper §3.1.1)

Responsibilities implemented here:

- session management (multiple sessions per service, factory instances);
- subscription: render services and active clients bootstrap by receiving
  the scene tree (timed through the introspection or binary marshaller —
  the Table 5 code path);
- update distribution with interest management: "sections of the dataset
  [are] marked as being of interest to a render service — this render
  service must be updated if the data service receives any changes to this
  subset of the data";
- audit-trail persistence and playback for asynchronous collaboration;
- mirroring (future work §6: "data servers could mirror each other",
  "a fail-safe mechanism").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

from repro.errors import SessionError
from repro.network.marshalling import (
    BinaryMarshaller,
    IntrospectionMarshaller,
)
from repro.obs.telemetry import ServiceTelemetry
from repro.obs.vocab import SERVICE_DATA, SERVICE_RENDER, TELEMETRY_SUBSCRIBE
from repro.scenegraph.audit import AuditTrail
from repro.scenegraph.tree import SceneTree
from repro.scenegraph.updates import SceneUpdate
from repro.services.container import ServiceContainer


@dataclass(frozen=True)
class BootstrapTiming:
    """Where a subscription bootstrap spent its simulated time."""

    instance_seconds: float
    handshake_seconds: float
    marshal_seconds: float
    transfer_seconds: float
    demarshal_seconds: float
    nbytes: int

    @property
    def total_seconds(self) -> float:
        return (self.instance_seconds + self.handshake_seconds
                + self.marshal_seconds + self.transfer_seconds
                + self.demarshal_seconds)


@dataclass
class Subscription:
    """One subscriber of a session."""

    name: str
    host: str
    kind: str                       # "render" | "client"
    #: node ids of interest; None means the whole scene
    interests: set[int] | None = None
    #: called with each relevant update (keeps remote copies in sync)
    on_update: Callable[[SceneUpdate], None] | None = None
    updates_delivered: int = 0

    def interested_in(self, update: SceneUpdate,
                      touched_ids: set[int] | None = None) -> bool:
        """``touched_ids`` may be pre-expanded to the touched subtrees (an
        update to an ancestor affects every descendant's rendering)."""
        if self.interests is None:
            return True
        touched = (touched_ids if touched_ids is not None
                   else update.touched_ids())
        return bool(self.interests & touched)


@dataclass
class DataSession:
    """One collaborative session hosted by a data service."""

    session_id: str
    tree: SceneTree
    trail: AuditTrail = field(default_factory=AuditTrail)
    sequence: int = 0
    subscribers: dict[str, Subscription] = field(default_factory=dict)
    #: wire snapshot of the tree as imported — the audit trail replays on
    #: top of this ("the data are intermittently streamed to disk")
    initial_snapshot: dict = field(default_factory=dict)
    #: autosave destination and cadence (updates between checkpoints);
    #: None disables
    autosave_path: str | None = None
    autosave_every: int = 25
    autosaves_written: int = 0
    #: for mirror clones: how many of the primary's trail entries were
    #: already baked into this session's snapshot at registration time
    mirror_baseline: int = 0

    def subscriber(self, name: str) -> Subscription:
        try:
            return self.subscribers[name]
        except KeyError:
            raise SessionError(
                f"{name!r} is not subscribed to {self.session_id!r}"
            ) from None


class DataService:
    """A data service deployed in a container on one host."""

    #: SOAP handshakes per subscription (subscribe + socket negotiation)
    HANDSHAKE_ROUND_TRIPS = 2

    def __init__(self, name: str, container: ServiceContainer,
                 policy=None) -> None:
        from repro.services.security import AccessPolicy
        from repro.services.wsdl import DATA_SERVICE_WSDL

        self.name = name
        self.container = container
        self.endpoint = container.deploy(DATA_SERVICE_WSDL)
        self._sessions: dict[str, DataSession] = {}
        self.mirrors: list[DataService] = []
        #: who may subscribe (§3.2.2: "resources may need to have access
        #: permissions modified to permit new users")
        self.policy = policy if policy is not None else AccessPolicy.open()
        #: per-service registry + event stream, scraped by the monitor
        self.telemetry = ServiceTelemetry(name, container.host,
                                          SERVICE_DATA)
        self.telemetry.add_collector(self._collect_telemetry)

    def _collect_telemetry(self, registry) -> None:
        """Refresh scrape-time gauges from live service state."""
        registry.gauge("rave_ds_sessions").set(len(self._sessions))
        registry.gauge("rave_ds_subscribers").set(
            sum(len(s.subscribers) for s in self._sessions.values()))
        registry.gauge("rave_ds_mirrors").set(len(self.mirrors))

    @property
    def host(self) -> str:
        return self.container.host

    @property
    def network(self):
        return self.container.network

    # -- sessions -----------------------------------------------------------------

    def create_session(self, session_id: str, tree: SceneTree,
                       charge_time: bool = True) -> DataSession:
        """Import a dataset as a new session (a factory instance)."""
        if session_id in self._sessions:
            raise SessionError(f"session {session_id!r} already exists")
        self.container.create_instance("data", label=session_id,
                                       charge_time=charge_time)
        session = DataSession(session_id=session_id, tree=tree,
                              initial_snapshot=tree.to_wire())
        self._sessions[session_id] = session
        return session

    def session(self, session_id: str) -> DataSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise SessionError(
                f"no session {session_id!r} on data service "
                f"{self.name!r}") from None

    def sessions(self) -> list[DataSession]:
        return list(self._sessions.values())

    # -- subscription & bootstrap ------------------------------------------------------

    def subscribe(self, session_id: str, subscriber_name: str, host: str,
                  kind: str = SERVICE_RENDER,
                  interests: set[int] | None = None,
                  on_update: Callable[[SceneUpdate], None] | None = None,
                  introspective: bool = True,
                  subscriber_cpu_factor: float = 1.0,
                  certificate=None,
                  ) -> tuple[SceneTree, BootstrapTiming]:
        """Subscribe and bootstrap: ship the (interest-filtered) scene tree.

        Returns the subscriber's own copy of the tree plus the timing
        breakdown Table 5 reports.  ``introspective`` selects the
        marshaller — True reproduces the published bottleneck, False the
        future-work binary stream.  The access policy is enforced first
        (SOAP fault on denial); GT3 containers additionally charge the GSI
        mutual-authentication handshake.
        """
        session = self.session(session_id)
        self.policy.authorize(subscriber_name, certificate)
        if self.container.flavor == "gt3":
            from repro.services.security import gt3_handshake_seconds

            self.network.sim.clock.advance(
                gt3_handshake_seconds(self.container.cpu_factor))
        if subscriber_name in session.subscribers:
            raise SessionError(
                f"{subscriber_name!r} already subscribed to {session_id!r}")

        # SOAP handshakes (subscribe + socket negotiation)
        from repro.network.transport import SoapChannel

        t0 = self.network.sim.clock.now
        channel = SoapChannel(self.network, host, self.host,
                              cpu_factor=self.container.cpu_factor)
        for _ in range(self.HANDSHAKE_ROUND_TRIPS):
            channel.request(
                ("subscribe", {"sessionId": session_id,
                               "subscriber": subscriber_name}),
                ("subscribeResponse", {"accepted": True}))
        handshake = self.network.sim.clock.now - t0

        # data transfer: marshal on this host, move, demarshal on subscriber
        if interests is None:
            payload_tree = session.tree
        else:
            payload_tree = session.tree.extract_subtree(sorted(interests))
        wire = payload_tree.to_wire()
        marshaller = (IntrospectionMarshaller(self.container.cpu_factor)
                      if introspective
                      else BinaryMarshaller(self.container.cpu_factor))
        result = marshaller.marshal(wire)
        self.network.sim.clock.advance(result.cpu_seconds)
        transfer = self.network.transfer_time(self.host, host, result.nbytes)
        self.network.sim.clock.advance(transfer)
        sub_marshaller = (IntrospectionMarshaller(subscriber_cpu_factor)
                          if introspective
                          else BinaryMarshaller(subscriber_cpu_factor))
        decoded, demarshal = sub_marshaller.demarshal(result.data)
        self.network.sim.clock.advance(demarshal)

        session.subscribers[subscriber_name] = Subscription(
            name=subscriber_name, host=host, kind=kind,
            interests=set(interests) if interests is not None else None,
            on_update=on_update)
        self.telemetry.registry.counter("rave_ds_subscriptions_total").inc()
        self.telemetry.event(TELEMETRY_SUBSCRIBE, self.network.sim.clock.now,
                             f"{subscriber_name} -> {session_id}")
        timing = BootstrapTiming(
            instance_seconds=0.0,
            handshake_seconds=handshake,
            marshal_seconds=result.cpu_seconds,
            transfer_seconds=transfer,
            demarshal_seconds=demarshal,
            nbytes=result.nbytes,
        )
        return SceneTree.from_wire(decoded), timing

    def unsubscribe(self, session_id: str, subscriber_name: str) -> None:
        session = self.session(session_id)
        if subscriber_name not in session.subscribers:
            raise SessionError(
                f"{subscriber_name!r} is not subscribed to {session_id!r}")
        del session.subscribers[subscriber_name]

    def set_interests(self, session_id: str, subscriber_name: str,
                      interests: set[int] | None) -> None:
        """Re-mark the dataset sections a subscriber must be updated about."""
        sub = self.session(session_id).subscriber(subscriber_name)
        sub.interests = set(interests) if interests is not None else None

    # -- update distribution --------------------------------------------------------------

    def publish_update(self, session_id: str, update: SceneUpdate,
                       ) -> dict[str, float]:
        """Apply an update to the master tree and multicast it out.

        Returns subscriber name → delivery time (simulated seconds after
        publication).  The originator (``update.origin``) is skipped — it
        already has the change.  Mirrors receive every update.
        """
        session = self.session(session_id)
        # Expand the touched set to whole subtrees *before* applying (a
        # transform on an ancestor re-orients every descendant; a removal
        # must reach whoever held any of the removed nodes).
        touched = set(update.touched_ids())
        for nid in list(touched):
            if nid in session.tree:
                touched.update(
                    n.node_id
                    for n in session.tree.node(nid).iter_subtree())
        update.apply(session.tree)
        session.sequence += 1
        session.trail.record(self.network.sim.clock.now, update)

        targets = [
            sub for sub in session.subscribers.values()
            if sub.name != update.origin
            and sub.interested_in(update, touched)
        ]
        nbytes = update.payload_bytes
        times = self.network.multicast_times(
            self.host, [s.host for s in targets], nbytes)
        deliveries: dict[str, float] = {}
        for sub in targets:
            if sub.on_update is not None:
                sub.on_update(update)
            sub.updates_delivered += 1
            deliveries[sub.name] = times[sub.host]
        registry = self.telemetry.registry
        registry.counter("rave_ds_updates_total").inc()
        registry.counter("rave_ds_update_bytes_total").inc(nbytes)
        registry.counter("rave_ds_deliveries_total").inc(len(targets))
        for mirror in self.mirrors:
            mirror._replicate(session_id, update)
        if (session.autosave_path is not None
                and session.sequence % session.autosave_every == 0):
            self.save_session(session_id, session.autosave_path)
            session.autosaves_written += 1
        return deliveries

    def enable_autosave(self, session_id: str, path,
                        every_n_updates: int = 25) -> None:
        """Intermittently stream the session to disk (§3.1.1).

        Every ``every_n_updates`` published updates, the full session
        (snapshot + audit trail) is checkpointed to ``path``; a crashed
        data service resumes from the last checkpoint via
        :meth:`load_session`.
        """
        if every_n_updates < 1:
            raise SessionError("checkpoint cadence must be >= 1")
        session = self.session(session_id)
        session.autosave_path = str(path)
        session.autosave_every = every_n_updates

    # -- persistence ---------------------------------------------------------------------

    def save_session(self, session_id: str, path) -> int:
        """Stream the session to disk: initial snapshot + audit trail.

        The snapshot is the imported dataset; the trail replays on top of
        it, so any point in the session's history is reconstructible.
        """
        from pathlib import Path

        from repro.network.marshalling import encode_value

        session = self.session(session_id)
        blob = encode_value({
            "format": "rave-session-1",
            "snapshot": session.initial_snapshot,
            "trail": [
                {"time": t, "update": u.to_wire()}
                for t, u in session.trail
            ],
        })
        Path(path).write_bytes(blob)
        return len(blob)

    def load_session(self, session_id: str, path,
                     charge_time: bool = False) -> DataSession:
        """Recreate a session by replaying its recorded audit trail over
        the stored snapshot."""
        from pathlib import Path

        from repro.errors import DataFormatError
        from repro.network.marshalling import decode_value
        from repro.scenegraph.updates import update_from_wire

        blob = decode_value(Path(path).read_bytes())
        if not isinstance(blob, dict) or blob.get("format") != \
                "rave-session-1":
            raise DataFormatError(f"{path}: not a RAVE session file")
        trail = AuditTrail()
        for rec in blob["trail"]:
            trail.record(rec["time"], update_from_wire(rec["update"]))
        tree = trail.playback(tree=SceneTree.from_wire(blob["snapshot"]))
        session = self.create_session(session_id, tree,
                                      charge_time=charge_time)
        session.trail = trail
        session.initial_snapshot = blob["snapshot"]
        return session

    # -- mirroring (future work, implemented) -----------------------------------------------

    def add_mirror(self, mirror: DataService) -> None:
        """Register a mirror that replicates every session and update."""
        if mirror is self:
            raise SessionError("a data service cannot mirror itself")
        for session in self.sessions():
            if session.session_id not in mirror._sessions:
                clone = SceneTree.from_wire(session.tree.to_wire())
                msession = mirror.create_session(session.session_id, clone,
                                                 charge_time=False)
                # The clone already contains every applied update; align the
                # counters so failover only replays what the mirror missed.
                msession.sequence = session.sequence
                msession.mirror_baseline = len(session.trail)
        self.mirrors.append(mirror)

    def _replicate(self, session_id: str, update: SceneUpdate) -> None:
        if session_id not in self._sessions:
            return
        session = self.session(session_id)
        update.apply(session.tree)
        session.sequence += 1
        session.trail.record(self.network.sim.clock.now, update)

    def failover_to(self, session_id: str) -> DataService:
        """Pick a mirror holding the session and hand it the live state.

        The mirror inherits the session's **subscribers** (with their
        interest sets and update callbacks — without this the mirror would
        never multicast updates to the session's existing render services)
        and replays any audit-trail entries it missed, so no update is
        lost across the failover.
        """
        for mirror in self.mirrors:
            if session_id in mirror._sessions:
                self._hand_over(session_id, mirror)
                return mirror
        raise SessionError(
            f"no mirror holds session {session_id!r}")

    def _hand_over(self, session_id: str, mirror: DataService) -> None:
        """Transfer a session's subscribers + missing trail to a mirror."""
        session = self._sessions.get(session_id)
        if session is None:
            return
        msession = mirror.session(session_id)
        # Replay whatever the mirror missed (a crash can land between the
        # primary applying an update and replicating it — anywhere in the
        # stream, not just at the end).  Entries baked into the mirror's
        # snapshot at registration are skipped via ``mirror_baseline``;
        # everything after it is matched against the mirror's own trail.
        seen = {id(u) for _, u in msession.trail}
        floor = max((t for t, _ in msession.trail), default=0.0)
        for time, update in list(session.trail)[msession.mirror_baseline:]:
            if id(update) in seen:
                continue
            update.apply(msession.tree)
            msession.sequence += 1
            # clamp so late-replayed gap entries keep the trail monotonic
            floor = max(floor, time)
            msession.trail.record(floor, update)
        for name, sub in session.subscribers.items():
            if name not in msession.subscribers:
                msession.subscribers[name] = Subscription(
                    name=sub.name, host=sub.host, kind=sub.kind,
                    interests=(set(sub.interests)
                               if sub.interests is not None else None),
                    on_update=sub.on_update,
                    updates_delivered=sub.updates_delivered)

    def __repr__(self) -> str:
        return (f"DataService(name={self.name!r}, host={self.host!r}, "
                f"sessions={sorted(self._sessions)})")
