"""The RAVE monitor service: the grid's monitoring plane.

A fourth service role alongside data, render and UDDI.  The paper's
migration policy needs load numbers, and in a real deployment those
numbers live on other machines — so the monitor *scrapes* each watched
service's :class:`~repro.obs.telemetry.ServiceTelemetry` over the
simulated network on a configurable period: the scrape payload is framed
by ``services/protocol.py`` and shipped through
:meth:`repro.network.simnet.Network.send`, so monitoring pays real
simulated transfer cost and shows up in the network's transfer log.

On every scrape the monitor:

- federates the payload into its labelled metrics view
  (:func:`repro.obs.telemetry.federate` — every series gains
  ``service``/``host`` labels);
- feeds flattened values to the :class:`~repro.obs.rules.RuleEngine`
  (same sustained-threshold semantics as the migration policy's
  ``LoadTracker``) and the :class:`~repro.obs.rules.SloTracker`
  (objectives from the paper's published rates);
- forwards newly-arrived remote service events into the active flight
  recorder, so a post-mortem dump shows the whole grid's timeline.

Alerts are plain data, consumable by
``WorkloadMigrator.plan(session, alerts=...)`` — the closed loop the
issue demonstrates.  Without a monitor nothing here runs and service
behaviour is unchanged.
"""

from __future__ import annotations

from collections import deque

from repro.errors import NetworkError, ServiceError
from repro.obs import active as _obs
from repro.obs.quantiles import (
    buckets_from_snapshot,
    estimate_quantile,
    merge_cumulative,
    quantile_suffix,
)
from repro.obs.rules import (
    DEFAULT_OVERLOAD_FPS,
    PAPER_SLOS,
    RuleEngine,
    SloTracker,
)
from repro.obs.telemetry import federate, flatten_metrics
from repro.obs.vocab import (
    EVENT_ALERT_PREFIX,
    EVENT_TELEMETRY_PREFIX,
    GRID_FARM_BACKLOG,
    GRID_FARM_RENDER,
    GRID_FARM_STARVED,
    GRID_FARM_THROUGHPUT,
    GRID_MAX_UTILISATION,
    GRID_MEAN_FPS,
    GRID_MEAN_UTILISATION,
    GRID_MIN_FPS,
    GRID_OVERLOADED_FRACTION,
    GRID_QUEUE_DEPTH,
    GRID_QUEUE_WAIT,
    GRID_REJECTION_RATE,
    GRID_RENDER_SERVICES,
    METRIC_HISTOGRAM,
    SERVICE_FARM,
    SERVICE_GRID,
    SERVICE_RENDER,
)
from repro.services.container import ServiceContainer
from repro.services.protocol import unframe_telemetry

#: snapshot format tag (the dashboard keys on it)
MONITOR_SNAPSHOT_FORMAT = "rave-monitor-snapshot/1"

#: pseudo-service name the grid-wide aggregate series are evaluated under
GRID_SERVICE = "_grid"

#: samples kept per (service, tail metric) for the dashboard sparkline
TAIL_HISTORY = 64

#: scraped histogram families the monitor federates grid-wide: per-``le``
#: bucket counts are summed across every service exporting the family,
#: and quantiles are estimated from the *merged* distribution (averaging
#: per-service percentiles would be statistically meaningless)
FEDERATED_HISTOGRAMS = (
    ("rave_queue_wait_seconds", GRID_QUEUE_WAIT),
    ("rave_farm_render_seconds", GRID_FARM_RENDER),
)

#: quantiles published for each federated histogram
FEDERATED_QUANTILES = (0.95, 0.99)


class MonitorService:
    """Scrapes per-service telemetry; evaluates alerts and SLOs."""

    def __init__(self, name: str, container: ServiceContainer,
                 period: float = 1.0, rules=None,
                 slos=PAPER_SLOS) -> None:
        from repro.services.wsdl import MONITOR_SERVICE_WSDL

        if period <= 0:
            raise ServiceError("scrape period must be positive")
        self.name = name
        self.container = container
        self.endpoint = container.deploy(MONITOR_SERVICE_WSDL)
        self.period = period
        self.engine = RuleEngine(rules=rules)
        self.slo = SloTracker(targets=slos)
        #: watched telemetry sources, keyed by service name
        self._targets: dict[str, object] = {}
        #: last successfully ingested payload per service
        self._latest: dict[str, dict] = {}
        #: per-service high-water mark of forwarded remote events
        self._forwarded: dict[str, int] = {}
        self.scrapes = 0
        self.scrape_failures = 0
        self.scrape_bytes = 0
        #: same-origin overwrites detected by the last federate() call
        self.federate_collisions = 0
        #: service -> tail metric -> deque[(time, value)] (sparkline feed)
        self._tail: dict[str, dict[str, deque]] = {}
        #: (rule, service) pairs already noted to the flight recorder
        self._alerted: set[tuple[str, str]] = set()
        self._running = False
        #: the session autoscaler publishing through this monitor, if any
        self.autoscaler = None

    @property
    def host(self) -> str:
        return self.container.host

    @property
    def network(self):
        return self.container.network

    # -- target management --------------------------------------------------------

    def watch(self, service) -> None:
        """Add a service (anything carrying a ``telemetry`` attribute)."""
        telemetry = getattr(service, "telemetry", None)
        if telemetry is None:
            raise ServiceError(
                f"{service!r} exposes no telemetry to scrape")
        self._targets[telemetry.service] = telemetry

    def unwatch(self, service_name: str) -> None:
        self._targets.pop(service_name, None)

    def targets(self) -> list[str]:
        return sorted(self._targets)

    def discover(self, uddi_client, directory: dict,
                 business: str | None = None,
                 tmodels: tuple[str, ...] | None = None) -> list[str]:
        """Find scrape targets through UDDI, the paper's discovery path.

        ``directory`` maps endpoint URL → live service object (the same
        resolution the :class:`~repro.core.recruitment.Recruiter` uses —
        a stand-in for dereferencing the access point).  Returns the
        service names newly watched.
        """
        from repro.core.recruitment import (
            DATA_TMODEL,
            RAVE_BUSINESS,
            RENDER_TMODEL,
        )

        business = business or RAVE_BUSINESS
        tmodels = tmodels or (RENDER_TMODEL, DATA_TMODEL)
        uddi_client.create_proxy()
        added: list[str] = []
        for tmodel in tmodels:
            scan = uddi_client.scan_access_points(business, tmodel)
            for point in scan.access_points:
                service = directory.get(point.url)
                if service is None:
                    continue
                telemetry = getattr(service, "telemetry", None)
                if telemetry is None or telemetry.service in self._targets:
                    continue
                self.watch(service)
                added.append(telemetry.service)
        return added

    # -- the scrape loop ----------------------------------------------------------

    def start(self) -> None:
        """Begin the recurring scrape tick on the simulated clock.

        The tick is a daemon event: it drives scrapes whenever the
        simulation runs but never keeps ``sim.run()`` alive by itself.
        """
        if self._running:
            return
        self._running = True
        self._schedule_tick()

    def stop(self) -> None:
        self._running = False

    def _schedule_tick(self) -> None:
        self.network.sim.schedule(self.period, self._tick, daemon=True)

    def _tick(self) -> None:
        if not self._running:
            return
        self.scrape_all()
        self.observe_grid(self.network.sim.now)
        self._schedule_tick()

    def scrape_all(self) -> None:
        for name in sorted(self._targets):
            self.scrape_one(self._targets[name])

    def scrape_one(self, telemetry) -> None:
        """Scrape one target over the simulated network.

        The payload is framed (real wire size), sent host-to-host via
        :meth:`Network.send`, and ingested when the transfer completes.
        A down host, missing route or in-flight drop counts as a scrape
        failure — monitoring traffic is traffic.
        """
        network = self.network
        if not network.host_is_up(telemetry.host):
            self.scrape_failures += 1
            return
        now = network.sim.clock.now
        frame = telemetry.scrape_frame(now)
        payload = unframe_telemetry(frame)

        def deliver(_record) -> None:
            self._ingest(payload, network.sim.now)

        def dropped(_record) -> None:
            self.scrape_failures += 1

        try:
            record = network.send(telemetry.host, self.host, len(frame),
                                  on_complete=deliver, on_drop=dropped)
        except NetworkError:
            self.scrape_failures += 1
            return
        self.scrape_bytes += record.nbytes

    def _ingest(self, payload: dict, arrival: float) -> None:
        service = payload["service"]
        self._latest[service] = payload
        flat = flatten_metrics(payload.get("metrics", {}))
        sample_time = payload.get("time", arrival)
        self.engine.observe(service, sample_time, flat)
        self.slo.observe(service, payload.get("kind", ""), sample_time, flat)
        self._record_tail(service, sample_time, flat)
        self._forward_events(service, payload)
        self.scrapes += 1

    def _record_tail(self, service: str, time: float,
                     values: dict[str, float]) -> None:
        """Keep a short p95 history per service for the tail panel."""
        for key, value in values.items():
            if not key.endswith("_p95"):
                continue
            history = self._tail.setdefault(service, {}).setdefault(
                key, deque(maxlen=TAIL_HISTORY))
            history.append((time, value))

    def _forward_events(self, service: str, payload: dict) -> None:
        """Relay newly-seen remote events into the active flight recorder."""
        obs = _obs()
        if not obs.enabled:
            return
        events = payload.get("events", [])
        seen = payload.get("events_seen", len(events))
        watermark = self._forwarded.get(service, 0)
        if seen < watermark:
            # The service restarted and its event counter reset; keeping
            # the old high-water mark would silently drop everything the
            # replacement emits, starting with its first payload.
            watermark = 0
        start_index = seen - len(events)       # ring may have overflowed
        for offset, event in enumerate(events):
            if start_index + offset < watermark:
                continue
            obs.recorder.note(EVENT_TELEMETRY_PREFIX + event["kind"],
                              time=event.get("time", 0.0),
                              detail=f"{service}: {event.get('detail', '')}")
        self._forwarded[service] = seen

    # -- grid-wide aggregates -------------------------------------------------------

    def grid_values(self) -> dict[str, float]:
        """Aggregate the latest scraped render-service payloads.

        The pool-wide view the autoscaler's rules evaluate: mean/min frame
        rate, mean/max utilisation and the fraction of render services
        currently below the interactive threshold, computed from whatever
        each service last shipped over the wire (a service that never
        rendered exports no fps gauge and does not drag the mean down).
        """
        values: dict[str, float] = {}
        renders = [self._latest[name] for name in sorted(self._latest)
                   if self._latest[name].get("kind") == SERVICE_RENDER]
        if renders:
            flats = [flatten_metrics(p.get("metrics", {}))
                     for p in renders]
            fps = [f["rave_rs_fps"] for f in flats if "rave_rs_fps" in f]
            utils = [f["rave_rs_utilisation"] for f in flats
                     if "rave_rs_utilisation" in f]
            values[GRID_RENDER_SERVICES] = float(len(renders))
            if fps:
                values[GRID_MEAN_FPS] = sum(fps) / len(fps)
                values[GRID_MIN_FPS] = min(fps)
                values[GRID_OVERLOADED_FRACTION] = (
                    sum(1 for v in fps if v < DEFAULT_OVERLOAD_FPS)
                    / len(fps))
            if utils:
                values[GRID_MEAN_UTILISATION] = sum(utils) / len(utils)
                values[GRID_MAX_UTILISATION] = max(utils)
        # the admission plane: a scraped SessionGridManager payload maps
        # its queue-depth / rejection-rate gauges onto the fleet-wide
        # aggregates the grid-saturated rules (and autoscaler) evaluate
        for name in sorted(self._latest):
            payload = self._latest[name]
            if payload.get("kind") != SERVICE_GRID:
                continue
            flat = flatten_metrics(payload.get("metrics", {}))
            if "rave_queue_depth" in flat:
                values[GRID_QUEUE_DEPTH] = flat["rave_queue_depth"]
            if "rave_admission_rejection_rate" in flat:
                values[GRID_REJECTION_RATE] = (
                    flat["rave_admission_rejection_rate"])
        # the batch plane: a scraped FrameQueueService payload maps its
        # pending-frame depth / trailing throughput onto the aggregates
        # the farm-backlog rule (the autoscaler's second signal) fires on
        for name in sorted(self._latest):
            payload = self._latest[name]
            if payload.get("kind") != SERVICE_FARM:
                continue
            flat = flatten_metrics(payload.get("metrics", {}))
            if "rave_farm_queue_depth" in flat:
                values[GRID_FARM_BACKLOG] = (
                    values.get(GRID_FARM_BACKLOG, 0.0)
                    + flat["rave_farm_queue_depth"])
            if "rave_farm_frames_per_second" in flat:
                values[GRID_FARM_THROUGHPUT] = (
                    values.get(GRID_FARM_THROUGHPUT, 0.0)
                    + flat["rave_farm_frames_per_second"])
            if "rave_farm_starved_jobs" in flat:
                values[GRID_FARM_STARVED] = (
                    values.get(GRID_FARM_STARVED, 0.0)
                    + flat["rave_farm_starved_jobs"])
        # the tail plane: federated histogram quantiles from the merged
        # (not averaged) per-service bucket counts
        for family, derived in FEDERATED_HISTOGRAMS:
            merged = self.federated_buckets(family)
            if not merged or merged[-1][1] <= 0:
                continue
            for q in FEDERATED_QUANTILES:
                values[f"{derived}_{quantile_suffix(q)}"] = (
                    estimate_quantile(merged, q))
        return values

    def federated_buckets(self, name: str) -> list[tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs summed across every service.

        Collects the named histogram family from each latest scraped
        payload and merges the per-service cumulative bucket counts per
        ``le`` bound — the federation step that makes a grid-wide p95
        answer "what does the slowest 5% of *all* requests see", which
        no average of per-service p95s can.
        """
        per_service: list[list[tuple[float, int]]] = []
        for sname in sorted(self._latest):
            family = self._latest[sname].get("metrics", {}).get(name)
            if not family or family.get("kind") != METRIC_HISTOGRAM:
                continue
            for entry in family.get("series", []):
                if entry.get("buckets"):
                    per_service.append(buckets_from_snapshot(entry))
        return merge_cumulative(per_service) if per_service else []

    def observe_grid(self, now: float) -> dict[str, float]:
        """Feed the grid-wide aggregates into the rule engine."""
        values = self.grid_values()
        if values:
            self.engine.observe(GRID_SERVICE, now, values)
            self._record_tail(GRID_SERVICE, now, values)
        self._note_new_alerts(now)
        return values

    def _note_new_alerts(self, now: float) -> None:
        """Flight-record each (rule, service) the moment it starts firing.

        The recorded event carries the alert's kind under the ``alert:``
        namespace, so a post-mortem dump shows *when* the monitoring
        plane declared the condition — re-noted only after the alert
        clears and fires again, not on every tick it stays up.
        """
        obs = _obs()
        firing = self.firing_alerts()
        keys = {(a.rule, a.service) for a in firing}
        if obs.enabled:
            for alert in firing:
                if (alert.rule, alert.service) in self._alerted:
                    continue
                obs.recorder.note(
                    EVENT_ALERT_PREFIX + alert.kind, time=now,
                    detail=f"{alert.rule} on {alert.service}: "
                           f"value={alert.value:g} since={alert.since:g}")
        self._alerted = keys

    # -- evaluation + publication ---------------------------------------------------

    def attach_autoscaler(self, autoscaler) -> None:
        """Publish an autoscaler's pool history through this monitor.

        The :class:`~repro.core.autoscale.RecruitmentAutoscaler` calls
        this on construction; the snapshot (and therefore the dashboard)
        then carries an ``autoscale`` section with the pool-size history
        and every grow/release decision.
        """
        self.autoscaler = autoscaler

    def firing_alerts(self):
        """Alerts currently sustained (``rules.Alert`` objects)."""
        return self.engine.firing()

    def slo_report(self) -> dict:
        return self.slo.report()

    def snapshot(self) -> dict:
        """The federated monitor view (what the dashboard renders)."""
        services = {}
        for name in sorted(self._latest):
            payload = self._latest[name]
            services[name] = {
                "host": payload.get("host", "?"),
                "kind": payload.get("kind", "?"),
                "time": payload.get("time", 0.0),
                "metrics": flatten_metrics(payload.get("metrics", {})),
                "events_seen": payload.get("events_seen", 0),
            }
        federate_stats: dict = {}
        merged = federate((self._latest[name]
                           for name in sorted(self._latest)),
                          stats=federate_stats)
        self.federate_collisions = federate_stats.get(
            "federate_collisions", 0)
        snapshot = {
            "format": MONITOR_SNAPSHOT_FORMAT,
            "time": self.network.sim.clock.now,
            "period": self.period,
            "grid": self.grid_values(),
            "services": services,
            "metrics": merged,
            "alerts": [
                {"rule": a.rule, "kind": a.kind, "service": a.service,
                 "since": a.since, "last_time": a.last_time,
                 "value": a.value, "severity": a.severity}
                for a in self.firing_alerts()
            ],
            "slo": self.slo_report(),
            "tail": {
                service: {metric: [[t, v] for t, v in history]
                          for metric, history in sorted(metrics.items())}
                for service, metrics in sorted(self._tail.items())
            },
            "scrapes": {"count": self.scrapes,
                        "failures": self.scrape_failures,
                        "bytes": self.scrape_bytes,
                        "federate_collisions": self.federate_collisions},
        }
        if self.autoscaler is not None:
            snapshot["autoscale"] = self.autoscaler.describe()
        return snapshot

    def __repr__(self) -> str:
        return (f"MonitorService(name={self.name!r}, host={self.host!r}, "
                f"targets={self.targets()}, period={self.period})")


__all__ = ["GRID_SERVICE", "MONITOR_SNAPSHOT_FORMAT", "MonitorService"]
