"""Binary data-plane message framing.

"The sockets are specified during the initial SOAP-based service
subscription by the client" — once subscribed, RAVE talks length-prefixed
binary frames.  A frame is a fixed little-endian header (magic, version,
payload length, CRC32) followed by the payload produced by
:mod:`repro.network.marshalling`.

Frames may carry a trace context (``FLAG_TRACE``): a 16-byte prefix of
two little-endian u64s — trace id, then parent span id — inside the
CRC-protected payload, so the checksum covers it and old readers that
ignore the flag fail loudly on length rather than silently misparse.
:func:`unframe_message` strips the prefix and surfaces it as a
:class:`~repro.obs.tracing.TraceContext` on the returned header.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass

from repro.errors import MarshallingError
from repro.obs.tracing import TraceContext

_MAGIC = 0x52415645  # "RAVE"
_VERSION = 1
_HEADER = struct.Struct("<IHHIQ")  # magic, version, flags, crc32, length
_TRACE = struct.Struct("<QQ")      # trace id, parent span id

#: frame carries a telemetry scrape payload (JSON body)
FLAG_TELEMETRY = 0x0001
#: frame carries an admission reject (429-style backpressure, JSON body)
FLAG_REJECT = 0x0002
#: frame carries a render-farm message (frame lease or result, JSON body)
FLAG_FARM = 0x0004
#: frame payload is prefixed with a 16-byte trace context (two u64 ids)
FLAG_TRACE = 0x0008


@dataclass(frozen=True)
class FrameHeader:
    version: int
    flags: int
    crc32: int
    length: int
    trace: TraceContext | None = None


def frame_message(payload: bytes, flags: int = 0,
                  trace: TraceContext | None = None) -> bytes:
    """Wrap a payload in a RAVE frame (optionally trace-stamped)."""
    if trace is not None:
        flags |= FLAG_TRACE
        payload = _TRACE.pack(int(trace.trace_id, 16),
                              int(trace.span_id, 16)) + payload
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return _HEADER.pack(_MAGIC, _VERSION, flags, crc, len(payload)) + payload


def unframe_message(data: bytes) -> tuple[FrameHeader, bytes]:
    """Unwrap a frame, validating magic, version, length and checksum."""
    if len(data) < _HEADER.size:
        raise MarshallingError(
            f"frame shorter than header ({len(data)} bytes)")
    magic, version, flags, crc, length = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise MarshallingError(f"bad frame magic 0x{magic:08x}")
    if version != _VERSION:
        raise MarshallingError(f"unsupported frame version {version}")
    body = data[_HEADER.size:]
    if len(body) != length:
        raise MarshallingError(
            f"frame length mismatch: header says {length}, got {len(body)}")
    actual = zlib.crc32(body) & 0xFFFFFFFF
    if actual != crc:
        raise MarshallingError(
            f"frame checksum mismatch: 0x{actual:08x} != 0x{crc:08x}")
    trace = None
    if flags & FLAG_TRACE:
        if len(body) < _TRACE.size:
            raise MarshallingError(
                f"trace-flagged frame too short for a trace context "
                f"({len(body)} bytes)")
        trace_id, span_id = _TRACE.unpack_from(body)
        trace = TraceContext(trace_id=f"{trace_id:016x}",
                             span_id=f"{span_id:016x}")
        body = body[_TRACE.size:]
    return FrameHeader(version=version, flags=flags, crc32=crc,
                       length=length, trace=trace), body


def frame_telemetry(payload: dict,
                    trace: TraceContext | None = None) -> bytes:
    """Wrap a telemetry scrape payload for the wire (the scrape endpoint).

    Compact deterministic JSON inside a standard RAVE frame: the byte
    length is what the monitor charges as simulated transfer cost.
    """
    body = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return frame_message(body, flags=FLAG_TELEMETRY, trace=trace)


def unframe_telemetry(data: bytes) -> dict:
    """Unwrap and parse a telemetry frame (validates flags + checksum)."""
    header, body = unframe_message(data)
    if not header.flags & FLAG_TELEMETRY:
        raise MarshallingError(
            f"frame flags 0x{header.flags:04x} carry no telemetry")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MarshallingError(f"malformed telemetry body: {exc}") from exc
    if not isinstance(payload, dict):
        raise MarshallingError("telemetry payload must be a JSON object")
    return payload


@dataclass(frozen=True)
class RejectInfo:
    """A decoded admission reject: the grid's 429 "too many requests".

    Mirrors the explicit-backpressure contract of Rendering-as-a-Service
    front ends: a full grid answers with a status, a human-readable
    reason, and a ``retry_after`` hint rather than timing out or
    degrading silently.
    """

    status: int
    reason: str
    retry_after: float
    tenant: str = ""
    session_id: str = ""
    queue_depth: int = 0
    trace: TraceContext | None = None


def frame_reject(reason: str, retry_after: float = 0.0, *,
                 status: int = 429, tenant: str = "",
                 session_id: str = "", queue_depth: int = 0,
                 trace: TraceContext | None = None) -> bytes:
    """Wrap an admission reject for the wire (grid → thin client).

    Compact deterministic JSON inside a standard RAVE frame, so the
    refusal costs real simulated transfer time like any other message.
    """
    body = json.dumps(
        {"status": status, "reason": reason, "retry_after": retry_after,
         "tenant": tenant, "session_id": session_id,
         "queue_depth": queue_depth},
        sort_keys=True, separators=(",", ":")).encode("utf-8")
    return frame_message(body, flags=FLAG_REJECT, trace=trace)


def unframe_reject(data: bytes) -> RejectInfo:
    """Unwrap and parse a reject frame (validates flags + checksum)."""
    header, body = unframe_message(data)
    if not header.flags & FLAG_REJECT:
        raise MarshallingError(
            f"frame flags 0x{header.flags:04x} carry no admission reject")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MarshallingError(f"malformed reject body: {exc}") from exc
    if not isinstance(payload, dict) or "status" not in payload:
        raise MarshallingError("reject payload must carry a status")
    return RejectInfo(
        status=int(payload["status"]),
        reason=str(payload.get("reason", "")),
        retry_after=float(payload.get("retry_after", 0.0)),
        tenant=str(payload.get("tenant", "")),
        session_id=str(payload.get("session_id", "")),
        queue_depth=int(payload.get("queue_depth", 0)),
        trace=header.trace)


@dataclass(frozen=True)
class FarmLease:
    """One leased animation frame: queue → worker.

    The queue hands out exactly one frame per pull; the lease names the
    job, the frame index, the scene session to render against, which
    attempt this is, the job's scheduling priority, and the
    simulated-clock deadline after which the queue may re-issue the
    frame to another worker.
    """

    job_id: str
    frame: int
    session_id: str
    attempt: int
    deadline: float
    priority: int = 0
    trace: TraceContext | None = None


@dataclass(frozen=True)
class FarmResult:
    """One completed frame: worker → queue."""

    job_id: str
    frame: int
    worker: str
    render_seconds: float
    nbytes: int
    #: which lease attempt produced this result; 0 is the legacy
    #: wildcard (pre-attempt senders) and matches any live lease
    attempt: int = 0
    trace: TraceContext | None = None


def frame_farm_lease(lease: FarmLease) -> bytes:
    """Wrap a frame lease for the wire (queue → render worker)."""
    body = json.dumps(
        {"type": "lease", "job_id": lease.job_id, "frame": lease.frame,
         "session_id": lease.session_id, "attempt": lease.attempt,
         "deadline": lease.deadline, "priority": lease.priority},
        sort_keys=True, separators=(",", ":")).encode("utf-8")
    return frame_message(body, flags=FLAG_FARM, trace=lease.trace)


def unframe_farm_lease(data: bytes) -> FarmLease:
    """Unwrap and parse a farm lease frame (validates flags + checksum)."""
    header, body = unframe_message(data)
    if not header.flags & FLAG_FARM:
        raise MarshallingError(
            f"frame flags 0x{header.flags:04x} carry no farm message")
    payload = _decode_farm_body(body)
    if payload.get("type") != "lease":
        raise MarshallingError(
            f"farm frame type {payload.get('type')!r} is not a lease")
    return FarmLease(
        job_id=str(payload.get("job_id", "")),
        frame=int(payload["frame"]),
        session_id=str(payload.get("session_id", "")),
        attempt=int(payload.get("attempt", 1)),
        deadline=float(payload.get("deadline", 0.0)),
        priority=int(payload.get("priority", 0)),
        trace=header.trace)


def frame_farm_result(result: FarmResult) -> bytes:
    """Wrap a completed-frame report for the wire (worker → queue)."""
    body = json.dumps(
        {"type": "result", "job_id": result.job_id, "frame": result.frame,
         "worker": result.worker, "render_seconds": result.render_seconds,
         "nbytes": result.nbytes, "attempt": result.attempt},
        sort_keys=True, separators=(",", ":")).encode("utf-8")
    return frame_message(body, flags=FLAG_FARM, trace=result.trace)


def unframe_farm_result(data: bytes) -> FarmResult:
    """Unwrap and parse a farm result frame (validates flags + checksum)."""
    header, body = unframe_message(data)
    if not header.flags & FLAG_FARM:
        raise MarshallingError(
            f"frame flags 0x{header.flags:04x} carry no farm message")
    payload = _decode_farm_body(body)
    if payload.get("type") != "result":
        raise MarshallingError(
            f"farm frame type {payload.get('type')!r} is not a result")
    return FarmResult(
        job_id=str(payload.get("job_id", "")),
        frame=int(payload["frame"]),
        worker=str(payload.get("worker", "")),
        render_seconds=float(payload.get("render_seconds", 0.0)),
        nbytes=int(payload.get("nbytes", 0)),
        attempt=int(payload.get("attempt", 0)),
        trace=header.trace)


def _decode_farm_body(body: bytes) -> dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MarshallingError(f"malformed farm body: {exc}") from exc
    if not isinstance(payload, dict) or "frame" not in payload:
        raise MarshallingError("farm payload must carry a frame index")
    return payload
