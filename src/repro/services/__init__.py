"""Grid/Web services substrate.

The paper's control plane: SOAP RPC (Apache Axis in a Tomcat container),
WSDL service descriptions, UDDI discovery, and the factory pattern that
makes stateless Web services behave like stateful OGSA Grid services.  The
data plane "backs off from SOAP" onto raw sockets — modelled by
:mod:`repro.network.transport`.

- :mod:`repro.services.soap` — SOAP 1.2-style envelope codec (real XML);
- :mod:`repro.services.wsdl` — WSDL document model + technical-model match;
- :mod:`repro.services.uddi` — the UDDI registry (businesses, tModels,
  services, access points) with warm-scan vs full-bootstrap query paths;
- :mod:`repro.services.container` — the Axis/Tomcat-like service container
  and instance factory;
- :mod:`repro.services.data_service` / :mod:`repro.services.render_service`
  — RAVE's two service roles;
- :mod:`repro.services.clients` — the thin client (PDA) and active render
  client;
- :mod:`repro.services.protocol` — binary data-plane message framing;
- :mod:`repro.services.retry` — control-plane hardening: retry policies,
  deadlines, circuit breakers, reliable SOAP channels.
"""

from repro.services.soap import SoapEnvelope, soap_decode, soap_encode
from repro.services.wsdl import WsdlDocument, Operation, build_wsdl
from repro.services.uddi import (
    AccessPoint,
    BindingTemplate,
    BusinessEntity,
    TechnicalModel,
    UddiRegistry,
)
from repro.services.container import ServiceContainer, ServiceInstance
from repro.services.protocol import (
    FrameHeader,
    RejectInfo,
    frame_message,
    frame_reject,
    unframe_message,
    unframe_reject,
)
from repro.services.data_service import DataService, DataSession
from repro.services.render_service import RenderService, RenderSession
from repro.services.clients import ActiveRenderClient, ThinClient, FrameTiming
from repro.services.retry import (
    CircuitBreaker,
    ReliableSoapChannel,
    RetryPolicy,
    ServiceHealthLedger,
    call_with_retry,
)

__all__ = [
    "SoapEnvelope",
    "soap_encode",
    "soap_decode",
    "WsdlDocument",
    "Operation",
    "build_wsdl",
    "UddiRegistry",
    "BusinessEntity",
    "TechnicalModel",
    "BindingTemplate",
    "AccessPoint",
    "ServiceContainer",
    "ServiceInstance",
    "FrameHeader",
    "frame_message",
    "unframe_message",
    "RejectInfo",
    "frame_reject",
    "unframe_reject",
    "DataService",
    "DataSession",
    "RenderService",
    "RenderSession",
    "ThinClient",
    "ActiveRenderClient",
    "FrameTiming",
    "RetryPolicy",
    "CircuitBreaker",
    "ReliableSoapChannel",
    "ServiceHealthLedger",
    "call_with_retry",
]
