"""RAVE clients: the thin client (PDA) and the active render client.

Thin client (paper §3.1.3): "a client that has no or very modest local
rendering resources ... connects to the render service and requests
rendered copies of the data.  The local user can still manipulate the
camera view point and the underlying data, but the actual data processing
and rendering transformations are carried out remotely."

Each frame request produces the Table 2 breakdown: render time on the
service, image receipt over the (wireless) network, and the client-side
overheads (SOAP request + blit), with fps the reciprocal of the total —
exactly how the paper's numbers compose (2.9 fps ≈ 1 / 0.339 s).

Active render client (paper §3.1.2): "a stand-alone copy of the render
service that can only render to the screen and does not support off-screen
rendering (as it does not have a Grid/Web service interface to advertise to
other clients)" — lets a user join without installing a service container.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.errors import ServiceError
from repro.hardware.profiles import PdaClientProfile, ZAURUS_CLIENT
from repro.obs import active as _obs
from repro.obs.tracing import TraceContext, new_trace_context
from repro.obs.vocab import SERVICE_CLIENT
from repro.network.simnet import Network
from repro.render.camera import Camera
from repro.render.engine import RenderEngine
from repro.render.framebuffer import FrameBuffer
from repro.scenegraph.nodes import AvatarNode, CameraNode
from repro.scenegraph.tree import SceneTree
from repro.scenegraph.updates import MoveAvatar, SceneUpdate, SetCamera
from repro.services.data_service import BootstrapTiming, DataService
from repro.services.render_service import RenderService


@dataclass(frozen=True)
class FrameTiming:
    """One remote frame, broken down as Table 2 reports it."""

    render_seconds: float
    image_receipt_seconds: float
    overhead_seconds: float
    nbytes: int
    #: timeout waits + backoff sleeps spent before the successful attempt
    retry_seconds: float = 0.0

    @property
    def total_latency(self) -> float:
        return (self.render_seconds + self.image_receipt_seconds
                + self.overhead_seconds + self.retry_seconds)

    @property
    def fps(self) -> float:
        return 1.0 / self.total_latency if self.total_latency > 0 else 0.0


class ThinClient:
    """A display-only client driving a remote render service."""

    #: bytes of the SOAP camera-update request
    REQUEST_BYTES = 900

    def __init__(self, name: str, host: str, network: Network,
                 device: PdaClientProfile = ZAURUS_CLIENT,
                 blit_path: str = "cpp", retry_policy=None,
                 retry_seed: int = 0) -> None:
        import random

        if host not in network.hosts:
            raise ServiceError(f"host {host!r} is not on the network")
        if blit_path not in ("cpp", "j2me"):
            raise ServiceError(f"unknown blit path {blit_path!r}")
        self.name = name
        self.host = host
        self.network = network
        self.device = device
        self.blit_path = blit_path
        #: optional :class:`repro.services.retry.RetryPolicy` for frames
        self.retry_policy = retry_policy
        self._retry_rng = random.Random(retry_seed)
        # deterministic trace ids: a dedicated stream seeded from the
        # client's identity, so replays mint identical traces and the
        # retry path's draws stay untouched
        self._trace_rng = random.Random(f"trace:{name}:{retry_seed}")
        #: the current request's trace context (None until one begins)
        self.trace: TraceContext | None = None
        self._service: RenderService | None = None
        self._rsid: str | None = None
        self.camera = CameraNode(name=f"{name}-camera")
        self.frames_received = 0
        self.frame_retries = 0
        #: 429s absorbed by sleeping out the server's retry_after hint
        self.admission_retries = 0

    # -- attachment -----------------------------------------------------------------

    def attach(self, service: RenderService, render_session_id: str) -> None:
        """Point this client at an existing render session."""
        service.render_session(render_session_id)  # validates
        self._service = service
        self._rsid = render_session_id

    @property
    def attached(self) -> bool:
        return self._service is not None

    # -- tracing --------------------------------------------------------------------

    def begin_trace(self) -> TraceContext:
        """Mint a fresh deterministic trace for the next request journey.

        The context propagates outward — the SOAP header of the admission
        call, the grid's reject/admission records, the render/stream
        spans — so one id stitches the whole thin-client → admission →
        render → transfer → blit chain together.
        """
        self.trace = new_trace_context(self._trace_rng)
        return self.trace

    # -- interaction -----------------------------------------------------------------

    def move_camera(self, position=None, target=None) -> None:
        self.camera.look(position=position, target=target)

    def orbit(self, azimuth: float, elevation: float = 0.0) -> None:
        self.camera.orbit(azimuth, elevation)

    def publish_camera(self, data_service: DataService, session_id: str,
                       camera_node_id: int) -> dict[str, float]:
        """Send the local camera move into the collaborative session."""
        update = SetCamera(node_id=camera_node_id, origin=self.name,
                           position=self.camera.position.copy(),
                           target=self.camera.target.copy(),
                           fov_degrees=self.camera.fov_degrees)
        return data_service.publish_update(session_id, update)

    # -- multi-tenant admission --------------------------------------------------------

    def open_grid_session(self, grid, tenant: str, session_id: str, tree,
                          target_fps: float | None = None,
                          retries: int = 0):
        """Ask a session grid for a collaborative session (admission path).

        The request pays the SOAP transfer to the grid's front door; the
        answer is the grid's explicit admission contract:

        - **admit** — the client attaches to the new session's first
          render service and the decision is returned;
        - **queue** — the decision (with queue position) is returned;
          the caller polls :meth:`SessionGridManager.pump` progress;
        - **reject** — the 429 frame travels back over the wire and is
          raised as :class:`~repro.errors.TooManyRequestsError`, so a
          full grid *tells* the user to come back instead of silently
          degrading everyone (the straty-style RaaS contract).

        With ``retries`` > 0 a reject is retried up to that many times,
        honouring the server-supplied ``retry_after`` hint: the client
        sleeps it off on the simulated clock (running due events, so
        capacity can actually free up in the meantime) instead of
        hammering the front door again immediately.  Waits spent this
        way accumulate in :attr:`admission_retries`.
        """
        from repro.errors import TooManyRequestsError
        from repro.obs.vocab import EVENT_ADMIT, EVENT_REJECT
        from repro.services.protocol import unframe_reject
        from repro.services.retry import wait

        clock = self.network.sim.clock
        obs = _obs()
        trace = self.begin_trace()
        t0 = clock.now
        attempts_left = max(0, int(retries))
        while True:
            request_time = self.network.transfer_time(
                self.host, grid.host, self.REQUEST_BYTES)
            clock.advance(request_time)
            decision = grid.request_session(
                tenant, session_id, tree, target_fps=target_fps,
                trace=trace.child(self._trace_rng))
            if decision.outcome != EVENT_REJECT:
                break
            frame = decision.reject_frame
            receipt = self.network.transfer_time(grid.host, self.host,
                                                 len(frame))
            clock.advance(receipt)
            info = unframe_reject(frame)
            if attempts_left > 0 and info.retry_after > 0:
                attempts_left -= 1
                self.admission_retries += 1
                wait(self.network.sim, info.retry_after)
                continue
            if obs.enabled:
                obs.tracer.record("request-session", t0, clock.now,
                                  service=self.name, client=self.name,
                                  session=session_id, outcome=EVENT_REJECT,
                                  trace=trace.trace_id)
            raise TooManyRequestsError(
                info.reason, retry_after=info.retry_after,
                queue_position=None, tenant=info.tenant)
        if obs.enabled:
            obs.tracer.record("request-session", t0, clock.now,
                              service=self.name, client=self.name,
                              session=session_id, outcome=decision.outcome,
                              trace=trace.trace_id)
        if decision.outcome == EVENT_ADMIT:
            session = decision.grid_session.session
            services = session.render_services
            if services:
                attachment = session.attachment(services[0])
                self.attach(services[0], attachment.render_session_id)
        return decision

    # -- frames ----------------------------------------------------------------------

    def request_frame(self, width: int = 200, height: int = 200,
                      codec=None) -> tuple[FrameBuffer, FrameTiming]:
        """One remote frame: request → off-screen render → receive → blit.

        ``codec`` optionally compresses the image for the wire (the
        adaptive-compression future work); image receipt then covers the
        compressed payload plus decode time on the device.  With a
        ``retry_policy``, transient network failures (downed link, crashed
        route) burn the attempt timeout plus a jittered backoff and the
        frame is re-requested; the waits surface as
        :attr:`FrameTiming.retry_seconds`.
        """
        if self._service is None or self._rsid is None:
            raise ServiceError(f"{self.name!r} is not attached to a "
                               "render service")
        if self.retry_policy is None:
            return self._request_frame_once(width, height, codec, 0.0)
        from repro.errors import NetworkError
        from repro.services.retry import wait

        sim = self.network.sim
        start = sim.now
        policy = self.retry_policy
        for attempt in range(1, policy.max_attempts + 1):
            try:
                return self._request_frame_once(
                    width, height, codec, sim.now - start)
            except NetworkError:
                self.frame_retries += 1
                if attempt == policy.max_attempts:
                    raise
                wait(sim, policy.timeout_s)
                wait(sim, policy.backoff_seconds(attempt, self._retry_rng))
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_frame_once(self, width: int, height: int, codec,
                            retry_seconds: float
                            ) -> tuple[FrameBuffer, FrameTiming]:
        service = self._service
        clock = self.network.sim.clock
        obs = _obs()
        frame = self.frames_received

        # 1. the SOAP camera/request message
        t0 = clock.now
        request_time = self.network.transfer_time(
            self.host, service.host, self.REQUEST_BYTES)
        clock.advance(request_time)

        # 2. remote off-screen render
        render_start = clock.now
        fb, render_timing = service.render_view(
            self._rsid, self.camera, width, height, offscreen=True)

        # 3. image transfer back
        payload = fb.color.tobytes()
        encode_seconds = 0.0
        encode_start = clock.now
        if codec is not None:
            encoded = codec.encode(fb)
            payload = encoded.data
            encode_seconds = encoded.encode_seconds
            clock.advance(encode_seconds)
        transfer_start = clock.now
        receipt = self.network.transfer_time(service.host, self.host,
                                             len(payload))
        clock.advance(receipt)

        # 4. device-side decode + blit
        decode_seconds = 0.0
        if codec is not None:
            decoded_fb, decode_seconds = codec.decode(encoded, width, height)
            clock.advance(decode_seconds)
            fb = decoded_fb
        blit_start = clock.now
        blit = self.device.blit_seconds(width, height, path=self.blit_path)
        clock.advance(blit)

        if obs.enabled:
            tracer = obs.tracer
            common = dict(session=self._rsid, client=self.name, frame=frame)
            if self.trace is not None:
                common["trace"] = self.trace.trace_id
            tracer.record("request", t0, render_start,
                          service=self.name, **common)
            tracer.record("render", render_start, encode_start,
                          service=service.name, **common)
            if codec is not None:
                tracer.record("encode", encode_start, transfer_start,
                              codec=encoded.codec, service=service.name,
                              **common)
            tracer.record("transfer", transfer_start,
                          transfer_start + receipt, nbytes=len(payload),
                          service=service.name, **common)
            if codec is not None:
                tracer.record("decode", transfer_start + receipt,
                              blit_start, service=self.name, **common)
            tracer.record("blit", blit_start, blit_start + blit,
                          service=self.name, **common)
            obs.metrics.counter("rave_client_frames_total",
                                "frames delivered to thin clients",
                                client=self.name).inc()
            obs.metrics.histogram("rave_client_frame_latency_seconds",
                                  "request to blit end"
                                  ).observe(clock.now - t0)

        self.frames_received += 1
        timing = FrameTiming(
            render_seconds=render_timing.total_seconds,
            image_receipt_seconds=receipt,
            overhead_seconds=(request_time + blit + encode_seconds
                              + decode_seconds),
            nbytes=len(payload),
            retry_seconds=retry_seconds,
        )
        assert abs((clock.now - t0)
                   - (timing.total_latency - timing.retry_seconds)) < 1e-6
        return fb, timing


class ActiveRenderClient:
    """A render-capable client without a service container.

    Bootstraps a scene copy from the data service and renders *on-screen
    only*; it cannot be recruited for off-screen assistance because it has
    no Grid/Web interface to advertise.
    """

    def __init__(self, name: str, host: str, network: Network,
                 profile) -> None:
        if host not in network.hosts:
            raise ServiceError(f"host {host!r} is not on the network")
        if not profile.can_render:
            raise ServiceError(
                f"{profile.name} cannot run an active render client")
        self.name = name
        self.host = host
        self.network = network
        self.profile = profile
        self.engine = RenderEngine(profile)
        self.tree: SceneTree | None = None
        self._data_service: DataService | None = None
        self._session_id: str | None = None
        self.camera = CameraNode(name=f"{name}-camera")
        self.avatar_id: int | None = None

    def join(self, data_service: DataService, session_id: str,
             introspective: bool = True) -> BootstrapTiming:
        """Subscribe and pull a local scene copy (no instance creation —
        there is no container)."""
        tree, timing = data_service.subscribe(
            session_id, subscriber_name=self.name, host=self.host,
            kind=SERVICE_CLIENT, on_update=self._apply_update,
            introspective=introspective,
            subscriber_cpu_factor=self.profile.cpu_factor)
        self.tree = tree
        self._data_service = data_service
        self._session_id = session_id
        return timing

    def _apply_update(self, update: SceneUpdate) -> None:
        if self.tree is not None:
            update.apply(self.tree)

    # -- collaboration -----------------------------------------------------------

    def announce_avatar(self) -> int:
        """Add this user's avatar to the shared scene; returns its node id."""
        if self._data_service is None or self.tree is None:
            raise ServiceError(f"{self.name!r} has not joined a session")
        master = self._data_service.session(self._session_id).tree
        avatar = AvatarNode(user=self.name, host=self.host,
                            position=self.camera.position.copy(),
                            view_direction=self.camera.view_direction())
        node_id = max(max((n.node_id for n in master), default=0),
                      max((n.node_id for n in self.tree), default=0)) + 1
        from repro.scenegraph.updates import AddNode

        update = AddNode.of(avatar, parent_id=master.root.node_id,
                            node_id=node_id, origin=self.name)
        self._data_service.publish_update(self._session_id, update)
        update.apply(self.tree)  # our own copy too
        self.avatar_id = node_id
        return node_id

    def move(self, position, target=None) -> None:
        """Move the local camera and propagate the avatar to collaborators."""
        self.camera.look(position=position, target=target)
        if self.avatar_id is not None and self._data_service is not None:
            update = MoveAvatar(
                node_id=self.avatar_id, origin=self.name,
                position=self.camera.position.copy(),
                view_direction=self.camera.view_direction())
            self._data_service.publish_update(self._session_id, update)
            update.apply(self.tree)

    # -- local rendering -----------------------------------------------------------

    def render(self, width: int, height: int,
               background=(12, 12, 24)) -> tuple[FrameBuffer, float]:
        """On-screen render of the local copy; returns (frame, sim seconds)."""
        if self.tree is None:
            raise ServiceError(f"{self.name!r} has not joined a session")
        from repro.services.render_service import RenderService as _RS

        fb = FrameBuffer(width, height, background=background)
        cam = Camera.from_node(self.camera)
        # Reuse the service's tree-drawing logic without a container.
        shim = _RS.__new__(_RS)
        session = type("S", (), {})()
        session.tree = self.tree
        session.assigned_ids = None
        session.frames_rendered = 0
        _RS._draw_tree(shim, session, cam, fb)
        seconds = self.engine.onscreen_seconds(self.tree.total_polygons(),
                                               fb.pixels)
        self.network.sim.clock.advance(seconds)
        return fb, seconds
