"""Access control and the Axis-vs-GT3 container trade-off.

Two security-adjacent threads from the paper:

- §3.2.2: services connect "automatically (no configuration is required
  by the client, although **resources may need to have access permissions
  modified to permit new users**)" — :class:`AccessPolicy` is that
  permission list, enforced at subscription time with a SOAP fault on
  denial.
- §4.3: "We may switch back to using GT3 when we wish to use **Grid
  security certificates to authorise users**.  However ... the build
  process [of Axis] is simpler and faster than Globus Toolkit 3" —
  :class:`GridCertificate` + :func:`gt3_handshake_seconds` model the GT3
  certificate path: mutual authentication adds per-connection handshakes,
  and GT3 instance creation is slower than Axis's (the reason the paper
  stayed on Axis during development).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import SoapFault

#: GT3 instance creation relative to Axis (the paper: Axis "simpler and
#: faster"; GT3 builds/deploys measured in multiples)
GT3_INSTANCE_FACTOR = 2.5
#: per-connection GSI mutual-authentication handshake (certificate chain
#: verification on 2004 CPUs)
GT3_HANDSHAKE_SECONDS = 0.35


@dataclass(frozen=True)
class GridCertificate:
    """A toy X.509-like identity certificate.

    ``subject`` is the user, ``issuer`` the signing CA; the signature is a
    digest over (subject, issuer) with the CA's key material — enough to
    test verification and forgery rejection without real crypto.
    """

    subject: str
    issuer: str
    signature: str

    @staticmethod
    def _sign(subject: str, issuer: str, ca_secret: str) -> str:
        return hashlib.sha256(
            f"{subject}|{issuer}|{ca_secret}".encode()).hexdigest()

    @classmethod
    def issue(cls, subject: str, issuer: str,
              ca_secret: str) -> GridCertificate:
        return cls(subject=subject, issuer=issuer,
                   signature=cls._sign(subject, issuer, ca_secret))

    def verify(self, issuer: str, ca_secret: str) -> bool:
        return (self.issuer == issuer
                and self.signature == self._sign(self.subject, issuer,
                                                 ca_secret))


@dataclass
class AccessPolicy:
    """Per-resource permission list with optional certificate checking.

    Modes:

    - open (default): anyone connects — the Axis/Web-services deployment;
    - allow-list: only named users;
    - certificates: only users presenting a certificate from the trusted
      CA (the GT3 deployment), optionally intersected with the allow-list.
    """

    #: None = everyone; else the permitted user names
    allowed_users: set[str] | None = None
    #: trusted CA name + secret; None disables certificate checks
    trusted_issuer: str | None = None
    _ca_secret: str = field(default="", repr=False)
    denials: int = 0

    @classmethod
    def open(cls) -> AccessPolicy:
        return cls()

    @classmethod
    def allow(cls, *users: str) -> AccessPolicy:
        return cls(allowed_users=set(users))

    @classmethod
    def certified(cls, issuer: str, ca_secret: str,
                  users: set[str] | None = None) -> AccessPolicy:
        return cls(allowed_users=users, trusted_issuer=issuer,
                   _ca_secret=ca_secret)

    def permit(self, user: str) -> None:
        """The administrator action the paper describes: modify access
        permissions to permit a new user."""
        if self.allowed_users is None:
            self.allowed_users = set()
        self.allowed_users.add(user)

    def revoke(self, user: str) -> None:
        if self.allowed_users is not None:
            self.allowed_users.discard(user)

    def authorize(self, user: str,
                  certificate: GridCertificate | None = None) -> None:
        """Raise a SOAP fault unless the user may connect."""
        if self.trusted_issuer is not None:
            if certificate is None:
                self.denials += 1
                raise SoapFault("Sender",
                                f"{user!r} must present a grid certificate")
            if certificate.subject != user or not certificate.verify(
                    self.trusted_issuer, self._ca_secret):
                self.denials += 1
                raise SoapFault("Sender",
                                f"certificate for {user!r} not trusted")
        if self.allowed_users is not None and user not in self.allowed_users:
            self.denials += 1
            raise SoapFault(
                "Sender",
                f"{user!r} is not permitted on this resource; ask the "
                "administrator to modify access permissions")


def gt3_handshake_seconds(cpu_factor: float = 1.0) -> float:
    """Per-connection GSI authentication cost on a given machine."""
    if cpu_factor <= 0:
        raise ValueError("cpu_factor must be positive")
    return GT3_HANDSHAKE_SECONDS / cpu_factor
