"""Continuous frame streaming (paper §5.5).

"At present we are not using any synchronisation between frame buffers,
local and remote simply rendering 'best effort' and continuously stream
images to the user."

Table 2's frame rates are *request-response*: fps = 1/(render + transfer +
overheads) because nothing overlaps.  A streaming service can instead
pipeline — render frame n+1 while frame n crosses the network — which this
module implements over the discrete-event simulator: the render engine and
the network act as two resources with their own busy timelines, and the
steady-state period becomes max(render, transfer) rather than the sum.

:class:`FrameStreamer` runs both modes so the pipelining ablation can
quantify the paper's follow-up opportunity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ServiceError
from repro.obs import active as _obs
from repro.obs.tracing import TraceContext


@dataclass
class StreamStats:
    """What a streaming run delivered."""

    frames: int
    elapsed_seconds: float
    #: per-frame arrival times at the client (simulated)
    arrivals: list[float] = field(default_factory=list)

    @property
    def fps(self) -> float:
        return self.frames / self.elapsed_seconds if self.elapsed_seconds \
            else 0.0

    @property
    def steady_period(self) -> float:
        """Median inter-arrival gap once the pipeline is full."""
        if len(self.arrivals) < 3:
            return self.elapsed_seconds / max(1, self.frames)
        gaps = sorted(b - a for a, b in zip(self.arrivals[1:-1],
                                            self.arrivals[2:]))
        return gaps[len(gaps) // 2]


class FrameStreamer:
    """Streams frames from a render service to a thin-client host."""

    def __init__(self, render_service, render_session_id: str,
                 client_host: str, width: int = 200, height: int = 200,
                 blit_seconds: float = 0.0,
                 trace: TraceContext | None = None) -> None:
        render_service.render_session(render_session_id)  # validate
        self.service = render_service
        self.rsid = render_session_id
        self.client_host = client_host
        self.width = width
        self.height = height
        self.blit_seconds = blit_seconds
        #: the originating request's trace context; every frame's span
        #: chain joins the caller's trace when set
        self.trace = trace

    def _frame_costs(self) -> tuple[float, float]:
        """(render seconds, transfer seconds) for one frame right now."""
        session = self.service.render_session(self.rsid)
        timing = self.service.engine.timing(
            session.assigned_polygons(), self.width * self.height,
            offscreen=True)
        nbytes = self.width * self.height * 3
        transfer = self.service.network.transfer_time(
            self.service.host, self.client_host, nbytes)
        return timing.total_seconds, transfer

    # -- request/response (what the paper measured in Table 2) ------------------

    def stream_lockstep(self, n_frames: int) -> StreamStats:
        """Request → render → transfer → blit, strictly serialised."""
        if n_frames < 1:
            raise ServiceError("need at least one frame")
        obs = _obs()
        clock = self.service.network.sim.clock
        t0 = clock.now
        arrivals = []
        for i in range(n_frames):
            render, transfer = self._frame_costs()
            start = clock.now
            clock.advance(render + transfer + self.blit_seconds)
            arrivals.append(clock.now)
            if obs.enabled:
                self._trace_frame(obs, "lockstep", i, start,
                                  start + render,
                                  start + render,
                                  start + render + transfer)
        if obs.enabled:
            obs.metrics.counter("rave_stream_frames_total",
                                "frames streamed", mode="lockstep",
                                session=self.rsid).inc(n_frames)
        stats = StreamStats(frames=n_frames,
                            elapsed_seconds=clock.now - t0,
                            arrivals=arrivals)
        self._report_stream_fps(stats)
        return stats

    # -- pipelined streaming (the §5.5 behaviour, modelled on the DES) -----------

    def stream_pipelined(self, n_frames: int) -> StreamStats:
        """Render and transfer overlap: two resources, event-driven.

        The renderer starts frame k+1 as soon as frame k finishes
        rendering; the network sends frame k as soon as both the frame is
        rendered and the previous transfer is done.  Best-effort, no
        synchronisation — exactly the paper's streaming mode.
        """
        if n_frames < 1:
            raise ServiceError("need at least one frame")
        obs = _obs()
        sim = self.service.network.sim
        t0 = sim.clock.now
        arrivals: list[float] = []

        render_free_at = t0
        net_free_at = t0
        for i in range(n_frames):
            render, transfer = self._frame_costs()
            render_start = max(render_free_at, sim.clock.now)
            render_done = render_start + render
            render_free_at = render_done
            send_start = max(render_done, net_free_at)
            arrival = send_start + transfer
            net_free_at = arrival
            if obs.enabled:
                self._trace_frame(obs, "pipelined", i, render_start,
                                  render_done, send_start, arrival)
            # schedule the arrival event so downstream consumers (e.g. a
            # FrameSynchronizer feeding a display) can react in order
            sim.schedule_at(arrival + self.blit_seconds,
                            lambda t=arrival: arrivals.append(t))
        sim.run()
        if obs.enabled:
            obs.metrics.counter("rave_stream_frames_total",
                                "frames streamed", mode="pipelined",
                                session=self.rsid).inc(n_frames)
        stats = StreamStats(frames=n_frames,
                            elapsed_seconds=sim.clock.now - t0,
                            arrivals=sorted(arrivals))
        self._report_stream_fps(stats)
        return stats

    def _report_stream_fps(self, stats: StreamStats) -> None:
        """Feed the achieved rate into the service's own telemetry (the
        pda-stream-fps SLO input)."""
        telemetry = getattr(self.service, "telemetry", None)
        if telemetry is not None:
            telemetry.registry.gauge("rave_stream_fps").set(stats.fps)

    def _trace_frame(self, obs, mode: str, frame: int, render_start: float,
                     render_done: float, send_start: float,
                     arrival: float) -> None:
        """Record one frame's render → transfer → blit span chain."""
        tracer = obs.tracer
        common = dict(session=self.rsid, mode=mode, frame=frame,
                      service=self.service.name)
        if self.trace is not None:
            common["trace"] = self.trace.trace_id
        tracer.record("render", render_start, render_done, **common)
        tracer.record("transfer", send_start, arrival, **common)
        tracer.record("blit", arrival, arrival + self.blit_seconds,
                      **common)
        obs.metrics.histogram(
            "rave_stream_frame_latency_seconds",
            "render start to blit end per frame", mode=mode
        ).observe(arrival + self.blit_seconds - render_start)
