"""Live data feeds and computational steering bridges.

Two pieces of the paper beyond static files:

- §3.1.1: "The data service imports data from either a static file or a
  **live feed from an external program**" — :class:`LiveFeed` pumps an
  external simulation's timesteps into a session as geometry updates.
- §5.2: "We will later create additional interactions for special
  objects, such as **bridging objects into remote processes**.  An example
  would be to exert a force on a molecule, which is displayed via RAVE but
  the molecule's behaviour is computed remotely via a third-party
  simulator; RAVE is used as the display and collaboration mechanism." —
  :class:`SteeringBridge` routes a user's drag on a bridged object back
  into the simulator as a force.

:class:`MoleculeSimulator` is the third-party-simulator stand-in: a small
deterministic mass-spring molecular toy whose state renders as a point
cloud (atoms) — enough dynamics that steering visibly matters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ServiceError
from repro.scenegraph.nodes import PointCloudNode
from repro.scenegraph.updates import AddNode, ModifyGeometry


class MoleculeSimulator:
    """Deterministic mass-spring 'molecule' (the remote third party).

    Atoms connected by springs along a backbone plus a few cross-links;
    velocity-Verlet integration with damping.  External forces applied via
    :meth:`apply_force` persist for one step — the steering input.
    """

    def __init__(self, n_atoms: int = 32, seed: int = 7,
                 spring_k: float = 40.0, damping: float = 2.0,
                 dt: float = 0.02) -> None:
        if n_atoms < 2:
            raise ValueError("a molecule needs at least two atoms")
        rng = np.random.default_rng(seed)
        t = np.linspace(0, 3 * np.pi, n_atoms)
        self.positions = np.stack([
            np.cos(t), np.sin(t), t / (3 * np.pi) * 2 - 1], axis=1)
        self.positions += rng.normal(0, 0.02, self.positions.shape)
        self.velocities = np.zeros_like(self.positions)
        bonds = [(i, i + 1) for i in range(n_atoms - 1)]
        bonds += [(i, i + 4) for i in range(0, n_atoms - 4, 5)]
        self.bonds = np.asarray(bonds, dtype=np.int64)
        self.rest_lengths = np.linalg.norm(
            self.positions[self.bonds[:, 0]]
            - self.positions[self.bonds[:, 1]], axis=1)
        self.spring_k = spring_k
        self.damping = damping
        self.dt = dt
        self._pending_force = np.zeros_like(self.positions)
        self.steps = 0

    @property
    def n_atoms(self) -> int:
        return len(self.positions)

    def apply_force(self, atom: int, force) -> None:
        """Queue an external force on one atom for the next step."""
        if not 0 <= atom < self.n_atoms:
            raise ValueError(f"no atom {atom}")
        self._pending_force[atom] += np.asarray(force, dtype=np.float64)

    def _forces(self) -> np.ndarray:
        f = np.zeros_like(self.positions)
        a = self.bonds[:, 0]
        b = self.bonds[:, 1]
        delta = self.positions[b] - self.positions[a]
        length = np.linalg.norm(delta, axis=1)
        length = np.maximum(length, 1e-12)
        stretch = (length - self.rest_lengths) / length
        pull = self.spring_k * stretch[:, None] * delta
        np.add.at(f, a, pull)
        np.add.at(f, b, -pull)
        f -= self.damping * self.velocities
        f += self._pending_force
        return f

    def step(self) -> np.ndarray:
        """One velocity-Verlet step; returns the new positions (view)."""
        f = self._forces()
        self.velocities += f * self.dt
        self.positions += self.velocities * self.dt
        self._pending_force[:] = 0.0
        self.steps += 1
        return self.positions

    def kinetic_energy(self) -> float:
        return 0.5 * float((self.velocities ** 2).sum())


@dataclass
class FeedStats:
    timesteps_published: int = 0
    bytes_published: int = 0
    subscribers_reached: int = 0


class LiveFeed:
    """Pumps an external simulator's state into a data-service session."""

    def __init__(self, data_service, session_id: str,
                 simulator: MoleculeSimulator,
                 node_name: str = "molecule",
                 point_size: float = 2.0,
                 origin: str = "livefeed") -> None:
        self.data_service = data_service
        self.session_id = session_id
        self.simulator = simulator
        self.origin = origin
        self.stats = FeedStats()
        session = data_service.session(session_id)
        existing = session.tree.find_by_name(node_name)
        if existing:
            self.node_id = existing[0].node_id
        else:
            node = PointCloudNode(
                simulator.positions.astype(np.float32),
                point_size=point_size, name=node_name)
            self.node_id = max(n.node_id for n in session.tree) + 1
            data_service.publish_update(session_id, AddNode.of(
                node, parent_id=session.tree.root.node_id,
                node_id=self.node_id, origin=origin))

    def pump(self, n_steps: int = 1) -> dict[str, float]:
        """Advance the simulator and publish the new geometry."""
        if n_steps < 1:
            raise ServiceError("n_steps must be >= 1")
        for _ in range(n_steps):
            positions = self.simulator.step()
        update = ModifyGeometry(
            node_id=self.node_id, origin=self.origin,
            fields={"points": positions.astype(np.float32)})
        deliveries = self.data_service.publish_update(self.session_id,
                                                      update)
        self.stats.timesteps_published += 1
        self.stats.bytes_published += update.payload_bytes
        self.stats.subscribers_reached += len(deliveries)
        return deliveries


class SteeringBridge:
    """Routes user interaction on a bridged object into the simulator.

    The GUI side sees a normal scene node; a drag on it becomes
    :meth:`steer`, which converts the gesture into a force on the nearest
    atom and pumps the feed so every collaborator sees the response — the
    paper's molecule example verbatim.
    """

    def __init__(self, feed: LiveFeed, force_scale: float = 60.0) -> None:
        self.feed = feed
        self.force_scale = force_scale
        self.steers = 0

    def nearest_atom(self, point) -> int:
        point = np.asarray(point, dtype=np.float64)
        d = np.linalg.norm(self.feed.simulator.positions - point, axis=1)
        return int(np.argmin(d))

    def steer(self, grab_point, drag_vector,
              settle_steps: int = 3) -> dict[str, float]:
        """Grab near ``grab_point``, pull along ``drag_vector``."""
        atom = self.nearest_atom(grab_point)
        force = np.asarray(drag_vector, dtype=np.float64) * self.force_scale
        self.feed.simulator.apply_force(atom, force)
        self.steers += 1
        return self.feed.pump(n_steps=settle_steps)

    def bridged_interactions(self) -> list[str]:
        """What the interrogating GUI shows for the bridged object."""
        return ["select", "steer-force"]
