"""The service container (Apache Axis + Tomcat stand-in).

"RAVE runs as a background process using Grid/Web services, enabling us to
share resources with other users rather than commandeering an entire
machine."  A :class:`ServiceContainer` lives on one host of the simulated
network, exposes deployed services' WSDL documents, and implements the
factory pattern the paper describes for making stateless Web services
stateful: "passing the name of an instance as the first argument to all
instance related methods".

Instance creation is expensive — Axis deployment plus (for render services)
Java3D initialisation.  Calibration: Table 5's bootstrap intercept (~10 s
at zero payload) minus the subscription handshakes gives
``INSTANCE_CREATION_SECONDS = 9.8`` on the reference CPU.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import ServiceError
from repro.hardware.profiles import MachineProfile, get_profile
from repro.network.simnet import Network
from repro.services.wsdl import WsdlDocument

#: simulated seconds to create a service instance on the reference CPU
INSTANCE_CREATION_SECONDS = 9.8


@dataclass
class ServiceInstance:
    """One factory-created instance living inside a container."""

    instance_id: str
    kind: str                 # e.g. "data" / "render"
    created_at: float
    #: the service-specific state object
    state: object = None
    #: human-readable label shown by the registry GUI (e.g. "Skull-internal")
    label: str = ""


class ServiceContainer:
    """An Axis/Tomcat-like container bound to one network host."""

    def __init__(self, host: str, network: Network,
                 profile: MachineProfile | str | None = None,
                 http_port: int = 8080, flavor: str = "axis") -> None:
        if host not in network.hosts:
            raise ServiceError(f"host {host!r} is not on the network")
        if flavor not in ("axis", "gt3"):
            raise ServiceError(f"unknown container flavor {flavor!r}")
        self.host = host
        self.network = network
        #: "axis" (Apache Axis + Tomcat, the paper's choice) or "gt3"
        #: (Globus Toolkit 3: slower instance creation, GSI certificates)
        self.flavor = flavor
        if isinstance(profile, str):
            profile = get_profile(profile)
        if profile is None:
            profile_name = network.hosts[host].profile
            profile = get_profile(profile_name) if profile_name else None
        self.profile = profile
        self.http_port = http_port
        self._wsdl: dict[str, WsdlDocument] = {}
        self._instances: dict[str, ServiceInstance] = {}
        self._seq = itertools.count(1)

    @property
    def cpu_factor(self) -> float:
        return self.profile.cpu_factor if self.profile is not None else 1.0

    def endpoint(self, service_name: str) -> str:
        return f"http://{self.host}:{self.http_port}/axis/{service_name}"

    # -- deployment --------------------------------------------------------------

    def deploy(self, wsdl: WsdlDocument) -> str:
        """Expose a service description; returns its endpoint URL."""
        if wsdl.service_name in self._wsdl:
            raise ServiceError(
                f"{wsdl.service_name!r} already deployed on {self.host}")
        url = self.endpoint(wsdl.service_name)
        self._wsdl[wsdl.service_name] = WsdlDocument(
            service_name=wsdl.service_name, namespace=wsdl.namespace,
            operations=wsdl.operations, endpoint=url,
            documentation=wsdl.documentation)
        return url

    def wsdl_for(self, service_name: str) -> WsdlDocument:
        try:
            return self._wsdl[service_name]
        except KeyError:
            raise ServiceError(
                f"no service {service_name!r} on {self.host}") from None

    # -- the factory pattern ---------------------------------------------------------

    def create_instance(self, kind: str, label: str = "",
                        state: object = None,
                        charge_time: bool = True) -> ServiceInstance:
        """Create a named instance (the paper's Web-service factory trick).

        Advances the simulated clock by the instance-creation cost unless
        ``charge_time`` is disabled (tests).  GT3 containers pay the
        paper's noted build/deploy penalty over Axis.
        """
        if charge_time:
            from repro.services.security import GT3_INSTANCE_FACTOR

            cost = INSTANCE_CREATION_SECONDS / self.cpu_factor
            if self.flavor == "gt3":
                cost *= GT3_INSTANCE_FACTOR
            self.network.sim.clock.advance(cost)
        instance_id = f"{kind}-{self.host}-{next(self._seq):04d}"
        instance = ServiceInstance(
            instance_id=instance_id, kind=kind,
            created_at=self.network.sim.clock.now,
            state=state, label=label or instance_id)
        self._instances[instance_id] = instance
        return instance

    def instance(self, instance_id: str) -> ServiceInstance:
        try:
            return self._instances[instance_id]
        except KeyError:
            raise ServiceError(
                f"no instance {instance_id!r} on {self.host}") from None

    def instances(self, kind: str | None = None) -> list[ServiceInstance]:
        out = list(self._instances.values())
        if kind is not None:
            out = [i for i in out if i.kind == kind]
        return out

    def destroy_instance(self, instance_id: str) -> None:
        if instance_id not in self._instances:
            raise ServiceError(
                f"no instance {instance_id!r} on {self.host}")
        del self._instances[instance_id]

    def __repr__(self) -> str:
        return (f"ServiceContainer(host={self.host!r}, "
                f"services={sorted(self._wsdl)}, "
                f"instances={len(self._instances)})")
