"""UDDI registry and timed client.

The discovery layer: "WSDL can be registered with a UDDI server, enabling
remote users to find our publicly-available resources and connect
automatically."  The registry stores businesses, technical models (tModels,
keyed by WSDL signature), services and their binding templates (access
points), and answers the two query patterns Table 5 times:

- **warm scan** — an initialised UDDI session re-scanning access points of
  already-known services ("the simpler check ... for service removal or
  insertion"): paper ~0.70-0.73 s;
- **full bootstrap** — proxy creation, scan for the RAVE business, scan for
  render services under it, scan their access points: paper ~4.2-4.8 s.

:class:`UddiClient` performs those queries over a simulated network and
charges realistic 2004 costs: jUDDI's database-backed query processing
(~0.65 s/query server-side) plus SOAP envelope costs, and a ~2.3 s one-off
SOAP proxy creation (JVM class loading).  Both are calibration constants
with provenance; the query *logic* is real and tested independently of the
timing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import DiscoveryError
from repro.network.simnet import Network
from repro.network.transport import SoapChannel
from repro.obs.telemetry import ServiceTelemetry
from repro.obs.vocab import SERVICE_REGISTRY
from repro.services.wsdl import WsdlDocument

#: server-side processing per UDDI query (jUDDI over its SQL store, 2004)
QUERY_PROCESSING_SECONDS = 0.70
#: one-off SOAP proxy creation on the client (stub generation, class loading)
PROXY_CREATION_SECONDS = 2.3


@dataclass(frozen=True)
class AccessPoint:
    """Where to reach a service instance."""

    url: str
    host: str
    protocol: str = "http"


@dataclass(frozen=True)
class TechnicalModel:
    """A tModel: named API contract backed by a WSDL signature."""

    key: str
    name: str
    wsdl_signature: str


@dataclass
class BindingTemplate:
    """One deployed endpoint of a service, bound to tModels it implements."""

    binding_key: str
    access_point: AccessPoint
    tmodel_keys: tuple[str, ...]


@dataclass
class BusinessService:
    service_key: str
    name: str
    bindings: list[BindingTemplate] = field(default_factory=list)


@dataclass
class BusinessEntity:
    """A registered organisation (e.g. "RAVE project")."""

    business_key: str
    name: str
    description: str = ""
    services: list[BusinessService] = field(default_factory=list)


class UddiRegistry:
    """The registry proper — pure data structure + queries, no timing."""

    def __init__(self, name: str = "uddi",
                 host: str = "registry-host") -> None:
        self.name = name
        self.host = host
        self._businesses: dict[str, BusinessEntity] = {}
        self._tmodels: dict[str, TechnicalModel] = {}
        self._keys = itertools.count(1)
        #: registry-side telemetry (query/publication counters), scrapeable
        self.telemetry = ServiceTelemetry(name, host, SERVICE_REGISTRY)
        self.telemetry.add_collector(self._collect_telemetry)

    def _collect_telemetry(self, registry) -> None:
        registry.gauge("rave_uddi_businesses").set(len(self._businesses))
        registry.gauge("rave_uddi_tmodels").set(len(self._tmodels))
        registry.gauge("rave_uddi_services").set(
            sum(len(b.services) for b in self._businesses.values()))

    def _count_query(self, op: str) -> None:
        self.telemetry.registry.counter("rave_uddi_queries_total",
                                        op=op).inc()

    def _new_key(self, prefix: str) -> str:
        return f"uuid:{prefix}-{next(self._keys):08d}"

    # -- publication -----------------------------------------------------------

    def register_business(self, name: str,
                          description: str = "") -> BusinessEntity:
        entity = BusinessEntity(business_key=self._new_key("biz"), name=name,
                                description=description)
        self._businesses[entity.business_key] = entity
        return entity

    def register_tmodel(self, name: str, wsdl: WsdlDocument) -> TechnicalModel:
        """Advertise a WSDL as a technical model; idempotent per signature."""
        signature = wsdl.signature()
        for tm in self._tmodels.values():
            if tm.wsdl_signature == signature:
                return tm
        tm = TechnicalModel(key=self._new_key("tm"), name=name,
                            wsdl_signature=signature)
        self._tmodels[tm.key] = tm
        return tm

    def register_service(self, business_key: str, name: str,
                         access_point: AccessPoint,
                         tmodels: list[TechnicalModel]) -> BusinessService:
        business = self._require_business(business_key)
        service = BusinessService(service_key=self._new_key("svc"), name=name)
        service.bindings.append(BindingTemplate(
            binding_key=self._new_key("bind"),
            access_point=access_point,
            tmodel_keys=tuple(tm.key for tm in tmodels),
        ))
        business.services.append(service)
        self._count_query("register_service")
        return service

    def unregister_service(self, business_key: str, service_key: str) -> None:
        business = self._require_business(business_key)
        before = len(business.services)
        business.services = [s for s in business.services
                             if s.service_key != service_key]
        if len(business.services) == before:
            raise DiscoveryError(f"no service {service_key!r} under "
                                 f"{business.name!r}")

    # -- queries -----------------------------------------------------------------

    def _require_business(self, business_key: str) -> BusinessEntity:
        try:
            return self._businesses[business_key]
        except KeyError:
            raise DiscoveryError(f"unknown business {business_key!r}") from None

    def find_business(self, name: str) -> BusinessEntity:
        self._count_query("find_business")
        for entity in self._businesses.values():
            if entity.name == name:
                return entity
        raise DiscoveryError(f"no business named {name!r}")

    def find_tmodel(self, name: str) -> TechnicalModel:
        self._count_query("find_tmodel")
        for tm in self._tmodels.values():
            if tm.name == name:
                return tm
        raise DiscoveryError(f"no tModel named {name!r}")

    def find_services(self, business_key: str,
                      tmodel_key: str | None = None) -> list[BusinessService]:
        """Services of a business, optionally filtered by technical model."""
        self._count_query("find_services")
        business = self._require_business(business_key)
        if tmodel_key is None:
            return list(business.services)
        return [
            s for s in business.services
            if any(tmodel_key in b.tmodel_keys for b in s.bindings)
        ]

    def access_points(self, services: list[BusinessService]
                      ) -> list[AccessPoint]:
        return [b.access_point for s in services for b in s.bindings]

    def services_matching_wsdl(self, wsdl: WsdlDocument
                               ) -> list[BusinessService]:
        """Every registered service whose tModel matches this WSDL's API."""
        signature = wsdl.signature()
        keys = {tm.key for tm in self._tmodels.values()
                if tm.wsdl_signature == signature}
        out = []
        for business in self._businesses.values():
            for service in business.services:
                if any(set(b.tmodel_keys) & keys for b in service.bindings):
                    out.append(service)
        return out


@dataclass(frozen=True)
class ScanResult:
    """A timed discovery outcome."""

    access_points: tuple[AccessPoint, ...]
    elapsed_seconds: float
    queries: int


class UddiClient:
    """Timed UDDI access from a host on the simulated network."""

    def __init__(self, registry: UddiRegistry, network: Network,
                 client_host: str, registry_host: str,
                 cpu_factor: float = 1.0) -> None:
        self.registry = registry
        self.network = network
        self.client_host = client_host
        self.registry_host = registry_host
        self.cpu_factor = cpu_factor
        self._proxy_ready = False

    def _query(self, operation: str, request: dict, response: dict) -> float:
        """One SOAP query round trip + server-side processing; returns secs."""
        channel = SoapChannel(self.network, self.client_host,
                              self.registry_host, cpu_factor=self.cpu_factor)
        t0 = self.network.sim.clock.now
        channel.request((operation, request), (operation + "Response", response))
        self.network.sim.clock.advance(QUERY_PROCESSING_SECONDS)
        return self.network.sim.clock.now - t0

    def create_proxy(self) -> float:
        """Initialise the UDDI SOAP proxy (idempotent)."""
        if self._proxy_ready:
            return 0.0
        self.network.sim.clock.advance(PROXY_CREATION_SECONDS / self.cpu_factor)
        self._proxy_ready = True
        return PROXY_CREATION_SECONDS / self.cpu_factor

    def scan_access_points(self, business_name: str,
                           tmodel_name: str) -> ScanResult:
        """The warm scan: one query re-listing current access points."""
        if not self._proxy_ready:
            raise DiscoveryError("UDDI proxy not initialised; call "
                                 "create_proxy or full_bootstrap first")
        t0 = self.network.sim.clock.now
        business = self.registry.find_business(business_name)
        tmodel = self.registry.find_tmodel(tmodel_name)
        services = self.registry.find_services(business.business_key,
                                               tmodel.key)
        points = self.registry.access_points(services)
        self._query("get_bindingDetail",
                    {"business": business_name, "tModel": tmodel_name},
                    {"accessPoints": [p.url for p in points]})
        return ScanResult(access_points=tuple(points),
                          elapsed_seconds=self.network.sim.clock.now - t0,
                          queries=1)

    def full_bootstrap(self, business_name: str,
                       tmodel_name: str) -> ScanResult:
        """The cold path: proxy creation + business + service + binding scans.

        Mirrors the paper's enumeration: "proxy creation, scan business
        representing the RAVE project, scan for render services under the
        RAVE project, and finally scan for access points of these services".
        """
        t0 = self.network.sim.clock.now
        self._proxy_ready = False
        self.create_proxy()
        business = self.registry.find_business(business_name)
        self._query("find_business", {"name": business_name},
                    {"businessKey": business.business_key})
        tmodel = self.registry.find_tmodel(tmodel_name)
        services = self.registry.find_services(business.business_key,
                                               tmodel.key)
        self._query("find_service",
                    {"businessKey": business.business_key,
                     "tModel": tmodel_name},
                    {"serviceKeys": [s.service_key for s in services]})
        points = self.registry.access_points(services)
        self._query("get_bindingDetail",
                    {"serviceKeys": [s.service_key for s in services]},
                    {"accessPoints": [p.url for p in points]})
        return ScanResult(access_points=tuple(points),
                          elapsed_seconds=self.network.sim.clock.now - t0,
                          queries=3)
