"""WSDL document model.

"A Grid/Web service can have its API described in a WSDL document, which is
then advertised as a 'Technical Model' in UDDI.  If any services are
advertised as adhering to this technical model, then we know they will have
the same API and underlying behaviour."  (paper §4.3)

A :class:`WsdlDocument` lists typed operations; :func:`build_wsdl`
constructs one; :meth:`WsdlDocument.signature` is the canonical string UDDI
technical models key on — two services match a tModel iff their WSDL
signatures are identical.  Documents serialise to real XML (the bytes a
UDDI query response carries).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from xml.etree import ElementTree as ET

from repro.errors import MarshallingError


@dataclass(frozen=True)
class Operation:
    """One RPC operation: name plus (param name, xsd type) pairs each way."""

    name: str
    inputs: tuple[tuple[str, str], ...] = ()
    outputs: tuple[tuple[str, str], ...] = ()

    def signature(self) -> str:
        ins = ",".join(f"{n}:{t}" for n, t in self.inputs)
        outs = ",".join(f"{n}:{t}" for n, t in self.outputs)
        return f"{self.name}({ins})->({outs})"


@dataclass
class WsdlDocument:
    """A service description: target namespace, operations, endpoint."""

    service_name: str
    namespace: str
    operations: tuple[Operation, ...]
    endpoint: str = ""
    documentation: str = ""

    def signature(self) -> str:
        """Canonical API signature (operation order-independent)."""
        ops = "&".join(sorted(op.signature() for op in self.operations))
        return f"{self.namespace}|{ops}"

    def signature_digest(self) -> str:
        """Short stable key derived from the signature (tModel key material)."""
        return hashlib.sha1(self.signature().encode()).hexdigest()[:16]

    def compatible_with(self, other: WsdlDocument) -> bool:
        """Same API and behaviour contract (the tModel match rule)."""
        return self.signature() == other.signature()

    def operation(self, name: str) -> Operation:
        for op in self.operations:
            if op.name == name:
                return op
        raise KeyError(f"{self.service_name} has no operation {name!r}")

    # -- XML ------------------------------------------------------------------

    def to_xml(self) -> bytes:
        root = ET.Element("definitions")
        root.set("name", self.service_name)
        root.set("targetNamespace", self.namespace)
        if self.documentation:
            doc = ET.SubElement(root, "documentation")
            doc.text = self.documentation
        port = ET.SubElement(root, "portType")
        port.set("name", f"{self.service_name}PortType")
        for op in self.operations:
            op_el = ET.SubElement(port, "operation")
            op_el.set("name", op.name)
            for kind, params in (("input", op.inputs), ("output", op.outputs)):
                k_el = ET.SubElement(op_el, kind)
                for pname, ptype in params:
                    p_el = ET.SubElement(k_el, "part")
                    p_el.set("name", pname)
                    p_el.set("type", ptype)
        svc = ET.SubElement(root, "service")
        svc.set("name", self.service_name)
        if self.endpoint:
            port_el = ET.SubElement(svc, "port")
            addr = ET.SubElement(port_el, "address")
            addr.set("location", self.endpoint)
        return ET.tostring(root, encoding="utf-8", xml_declaration=True)

    @classmethod
    def from_xml(cls, data: bytes) -> WsdlDocument:
        try:
            root = ET.fromstring(data)
        except ET.ParseError as exc:
            raise MarshallingError(f"malformed WSDL XML: {exc}") from exc
        name = root.get("name", "")
        namespace = root.get("targetNamespace", "")
        documentation = root.findtext("documentation", "")
        ops: list[Operation] = []
        port = root.find("portType")
        if port is not None:
            for op_el in port.findall("operation"):
                def parts(kind: str) -> tuple[tuple[str, str], ...]:
                    k_el = op_el.find(kind)
                    if k_el is None:
                        return ()
                    return tuple((p.get("name", ""), p.get("type", ""))
                                 for p in k_el.findall("part"))
                ops.append(Operation(name=op_el.get("name", ""),
                                     inputs=parts("input"),
                                     outputs=parts("output")))
        endpoint = ""
        svc = root.find("service")
        if svc is not None:
            addr = svc.find("port/address")
            if addr is not None:
                endpoint = addr.get("location", "")
        return cls(service_name=name, namespace=namespace,
                   operations=tuple(ops), endpoint=endpoint,
                   documentation=documentation)


def build_wsdl(service_name: str, operations: list[Operation],
               endpoint: str = "", namespace: str = "urn:rave:sc2004",
               documentation: str = "") -> WsdlDocument:
    """Convenience constructor with validation."""
    if not service_name:
        raise ValueError("service_name must be non-empty")
    names = [op.name for op in operations]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate operation names in {names}")
    return WsdlDocument(service_name=service_name, namespace=namespace,
                        operations=tuple(operations), endpoint=endpoint,
                        documentation=documentation)


# -- the two RAVE technical models (paper: "we have two technical models,
#    one for the data service and one for the render service") -----------------

DATA_SERVICE_WSDL = build_wsdl(
    "RaveDataService",
    [
        Operation("createSession", (("dataUrl", "xsd:string"),),
                  (("sessionId", "xsd:string"),)),
        Operation("listSessions", (), (("sessions", "rave:list"),)),
        Operation("subscribe",
                  (("sessionId", "xsd:string"),
                   ("subscriber", "xsd:string"),
                   ("socket", "xsd:string")),
                  (("accepted", "xsd:boolean"),)),
        Operation("publishUpdate", (("update", "rave:struct"),),
                  (("sequence", "xsd:long"),)),
        Operation("requestRender",
                  (("sessionId", "xsd:string"),
                   ("client", "xsd:string")),
                  (("renderService", "xsd:string"),)),
    ],
    documentation="RAVE data service: persistent scene distribution point",
)

RENDER_SERVICE_WSDL = build_wsdl(
    "RaveRenderService",
    [
        Operation("getCapacity", (),
                  (("polygonsPerSecond", "xsd:double"),
                   ("textureMemoryBytes", "xsd:long"),
                   ("volumeSupport", "xsd:boolean"))),
        Operation("createRenderSession",
                  (("dataServiceUrl", "xsd:string"),
                   ("sessionId", "xsd:string")),
                  (("renderSessionId", "xsd:string"),)),
        Operation("renderFrame",
                  (("renderSessionId", "xsd:string"),
                   ("camera", "rave:struct")),
                  (("frame", "xsd:base64Binary"),)),
        Operation("renderTile",
                  (("renderSessionId", "xsd:string"),
                   ("tile", "rave:struct")),
                  (("frame", "xsd:base64Binary"),
                   ("depth", "xsd:base64Binary"))),
        Operation("reportLoad", (),
                  (("framesPerSecond", "xsd:double"),
                   ("utilisation", "xsd:double"))),
    ],
    documentation="RAVE render service: on/off-screen rendering provider",
)

MONITOR_SERVICE_WSDL = build_wsdl(
    "RaveMonitorService",
    [
        Operation("listTargets", (), (("services", "rave:list"),)),
        Operation("scrape", (("service", "xsd:string"),),
                  (("telemetry", "xsd:base64Binary"),)),
        Operation("getAlerts", (), (("alerts", "rave:list"),)),
        Operation("getSloReport", (), (("report", "rave:struct"),)),
    ],
    documentation="RAVE monitor service: scrapes per-service telemetry, "
                  "evaluates alert rules and SLO targets",
)

FRAME_QUEUE_WSDL = build_wsdl(
    "RaveFrameQueueService",
    [
        Operation("submitJob",
                  (("sessionId", "xsd:string"),
                   ("startFrame", "xsd:int"),
                   ("endFrame", "xsd:int")),
                  (("jobId", "xsd:string"),)),
        Operation("leaseFrame", (("worker", "xsd:string"),),
                  (("lease", "xsd:base64Binary"),)),
        Operation("completeFrame", (("result", "xsd:base64Binary"),),
                  (("accepted", "xsd:boolean"),)),
        Operation("jobProgress", (("jobId", "xsd:string"),),
                  (("done", "xsd:int"), ("total", "xsd:int"))),
        Operation("auditFrames", (("jobId", "xsd:string"),),
                  (("missing", "rave:list"),)),
    ],
    documentation="RAVE frame queue service: batch animation frame queue — "
                  "idle render services lease one frame at a time",
)
