"""SOAP envelope encoding/decoding.

"Grid and Web services both implement remote procedure calls by sending the
procedure arguments and results in XML format (using SOAP).  They are hence
not tied to any particular architecture ... This also means that they are
not suited to large data transmission or low latency, due to the size of
the SOAP packets related to the size of the data, and the time required to
marshall/demarshall the data."  (paper §4.3)

This module makes that trade-off concrete: a real XML envelope codec whose
output *is* the bytes the simulated network carries.  Scalars become typed
elements, numpy arrays become base64 payloads (with the 4/3 size blow-up),
and the XML scaffolding adds the per-message overhead that motivates RAVE's
binary data plane.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass, field
from xml.etree import ElementTree as ET

import numpy as np

from repro.errors import MarshallingError, SoapFault
from repro.obs.tracing import TraceContext

_ENV_NS = "http://www.w3.org/2003/05/soap-envelope"
_RAVE_NS = "urn:rave:sc2004"

#: simulated CPU seconds per byte of XML text processed (parse/serialise);
#: calibrated so a warm UDDI scan of a handful of kilobyte-scale responses
#: costs tens of milliseconds, as in Table 5.
XML_SECONDS_PER_BYTE = 1.2e-7
#: fixed per-envelope cost (DOM setup, schema checks)
ENVELOPE_FIXED_SECONDS = 2.5e-3


@dataclass
class SoapEnvelope:
    """A decoded SOAP message: operation name, body values, optional fault.

    ``trace`` is the cross-service trace context carried in the SOAP
    Header (a ``rave:TraceContext`` element), the control-plane twin of
    the binary frame header's ``FLAG_TRACE`` prefix.
    """

    operation: str
    body: dict = field(default_factory=dict)
    fault: tuple[str, str] | None = None  # (code, reason)
    trace: TraceContext | None = None

    @property
    def is_fault(self) -> bool:
        return self.fault is not None

    def raise_for_fault(self) -> None:
        if self.fault is not None:
            raise SoapFault(*self.fault)


def _encode_element(parent: ET.Element, name: str, value) -> None:
    el = ET.SubElement(parent, name)
    if value is None:
        el.set("xsi-nil", "true")
    elif isinstance(value, bool):
        el.set("type", "xsd:boolean")
        el.text = "true" if value else "false"
    elif isinstance(value, (int, np.integer)):
        el.set("type", "xsd:long")
        el.text = str(int(value))
    elif isinstance(value, (float, np.floating)):
        el.set("type", "xsd:double")
        el.text = repr(float(value))
    elif isinstance(value, str):
        el.set("type", "xsd:string")
        el.text = value
    elif isinstance(value, (bytes, bytearray)):
        el.set("type", "xsd:base64Binary")
        el.text = base64.b64encode(bytes(value)).decode("ascii")
    elif isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        el.set("type", "rave:ndarray")
        el.set("dtype", arr.dtype.str)
        el.set("shape", ",".join(str(s) for s in arr.shape))
        el.text = base64.b64encode(arr.tobytes()).decode("ascii")
    elif isinstance(value, (list, tuple)):
        el.set("type", "rave:list")
        for item in value:
            _encode_element(el, "item", item)
    elif isinstance(value, dict):
        el.set("type", "rave:struct")
        for key, item in value.items():
            if not isinstance(key, str) or not key:
                raise MarshallingError(f"SOAP struct keys must be str: {key!r}")
            entry = ET.SubElement(el, "entry")
            entry.set("key", key)
            _encode_element(entry, "value", item)
    else:
        raise MarshallingError(
            f"cannot SOAP-encode value of type {type(value).__name__}")


def _decode_element(el: ET.Element):
    if el.get("xsi-nil") == "true":
        return None
    kind = el.get("type", "xsd:string")
    text = el.text or ""
    if kind == "xsd:boolean":
        return text.strip() == "true"
    if kind == "xsd:long":
        return int(text)
    if kind == "xsd:double":
        return float(text)
    if kind == "xsd:string":
        return text
    if kind == "xsd:base64Binary":
        return base64.b64decode(text)
    if kind == "rave:ndarray":
        dtype = np.dtype(el.get("dtype", "<f8"))
        shape_attr = el.get("shape", "")
        shape = tuple(int(s) for s in shape_attr.split(",") if s != "")
        raw = base64.b64decode(text)
        expected = dtype.itemsize * int(np.prod(shape)) if shape else len(raw)
        if shape and len(raw) != expected:
            raise MarshallingError(
                f"ndarray payload is {len(raw)} bytes, expected {expected}")
        return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
    if kind == "rave:list":
        return [_decode_element(child) for child in el]
    if kind == "rave:struct":
        out = {}
        for entry in el:
            key = entry.get("key")
            if key is None or len(entry) != 1:
                raise MarshallingError("malformed SOAP struct entry")
            out[key] = _decode_element(entry[0])
        return out
    raise MarshallingError(f"unknown SOAP value type {kind!r}")


def soap_encode(operation: str, body: dict | None = None,
                fault: tuple[str, str] | None = None,
                trace: TraceContext | None = None) -> bytes:
    """Build a SOAP envelope; returns the XML bytes that go on the wire."""
    envelope = ET.Element("Envelope")
    envelope.set("xmlns", _ENV_NS)
    envelope.set("xmlns:rave", _RAVE_NS)
    header_el = ET.SubElement(envelope, "Header")
    if trace is not None:
        trace_el = ET.SubElement(header_el, "TraceContext")
        trace_el.set("traceId", trace.trace_id)
        trace_el.set("spanId", trace.span_id)
    body_el = ET.SubElement(envelope, "Body")
    if fault is not None:
        fault_el = ET.SubElement(body_el, "Fault")
        code_el = ET.SubElement(fault_el, "Code")
        code_el.text = fault[0]
        reason_el = ET.SubElement(fault_el, "Reason")
        reason_el.text = fault[1]
    op_el = ET.SubElement(body_el, "Operation")
    op_el.set("name", operation)
    for key, value in (body or {}).items():
        entry = ET.SubElement(op_el, "arg")
        entry.set("key", key)
        _encode_element(entry, "value", value)
    return ET.tostring(envelope, encoding="utf-8", xml_declaration=True)


def _strip_namespaces(el: ET.Element) -> None:
    """Drop namespace prefixes in-place so lookups use local names."""
    for node in el.iter():
        if "}" in node.tag:
            node.tag = node.tag.split("}", 1)[1]


def soap_decode(data: bytes) -> SoapEnvelope:
    """Parse a SOAP envelope produced by :func:`soap_encode`."""
    try:
        root = ET.fromstring(data)
    except ET.ParseError as exc:
        raise MarshallingError(f"malformed SOAP XML: {exc}") from exc
    _strip_namespaces(root)
    trace = None
    header_el = root.find("Header")
    if header_el is not None:
        trace_el = header_el.find("TraceContext")
        if trace_el is not None:
            trace_id = trace_el.get("traceId", "")
            span_id = trace_el.get("spanId", "")
            if not trace_id or not span_id:
                raise MarshallingError(
                    "SOAP TraceContext header needs traceId and spanId")
            trace = TraceContext(trace_id=trace_id, span_id=span_id)
    body_el = root.find("Body")
    if body_el is None:
        raise MarshallingError("SOAP envelope has no Body")
    fault = None
    fault_el = body_el.find("Fault")
    if fault_el is not None:
        code = fault_el.findtext("Code", "Receiver")
        reason = fault_el.findtext("Reason", "")
        fault = (code, reason)
    op_el = body_el.find("Operation")
    if op_el is None:
        raise MarshallingError("SOAP body has no Operation")
    body = {}
    for entry in op_el:
        key = entry.get("key")
        if key is None or len(entry) != 1:
            raise MarshallingError("malformed SOAP arg")
        body[key] = _decode_element(entry[0])
    return SoapEnvelope(operation=op_el.get("name", ""), body=body,
                        fault=fault, trace=trace)


def soap_cpu_seconds(nbytes: int, cpu_factor: float = 1.0) -> float:
    """Simulated CPU time to produce or parse ``nbytes`` of SOAP XML."""
    return (ENVELOPE_FIXED_SECONDS + nbytes * XML_SECONDS_PER_BYTE) / cpu_factor


#: fault codes a client may transparently retry: the server never started
#: (or never finished) the operation, so repeating it is safe
RETRYABLE_FAULT_CODES = frozenset({
    "Receiver", "Timeout", "Unavailable", "ServiceBusy",
})


def is_retryable_fault(code: str) -> bool:
    """Is a SOAP fault with this code safe to retry?

    ``Sender`` faults (the request itself is wrong) and authorization
    failures are permanent; receiver-side faults are transient.
    """
    return code in RETRYABLE_FAULT_CODES
