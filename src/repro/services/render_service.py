"""The RAVE render service.

"Render services connect to the data service, and request a copy of the
latest data ... can be exposed to the local console ... can also render
off-screen for remote users ... may be requested to render a subset of the
scene tree or frame buffer."  (paper §3.1.2)

A :class:`RenderService` owns a :class:`~repro.render.engine.RenderEngine`
for its machine profile, keeps one shared scene copy per data session
("if multiple users view the same session, then a single copy of the data
are stored in the render service to save resources"), and serves:

- full-frame off-screen renders for thin clients;
- scene-subset renders (dataset distribution) — the caller composites by
  depth;
- tile renders (framebuffer distribution) — the caller assembles tiles;
- capacity and load reports for the data service's policy engine.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.capacity import (
    DEFAULT_TARGET_FPS,
    RenderCapacity,
    capacity_from_profile,
)
from repro.errors import ServiceError, SessionError
from repro.render.camera import Camera
from repro.render.engine import RenderEngine, RenderTiming
from repro.render.framebuffer import FrameBuffer, Tile
from repro.render.points import rasterize_points
from repro.render.rasterizer import rasterize_mesh
from repro.render.volume import raymarch_volume
from repro.scenegraph.nodes import (
    AvatarNode,
    CameraNode,
    MeshNode,
    PointCloudNode,
    VolumeNode,
)
from repro.obs.telemetry import ServiceTelemetry
from repro.obs.vocab import (
    SERVICE_RENDER,
    TELEMETRY_SESSION_CLOSED,
    TELEMETRY_SESSION_CREATED,
)
from repro.scenegraph.tree import SceneTree
from repro.scenegraph.updates import SceneUpdate
from repro.services.container import ServiceContainer
from repro.services.data_service import BootstrapTiming, DataService

import numpy as np


@dataclass
class RenderSession:
    """One render session: a user (or assisting service) viewing a dataset."""

    render_session_id: str
    data_service: DataService
    session_id: str
    #: the shared local scene copy (one per (service, session_id))
    tree: SceneTree
    #: node ids this service is responsible for; None = whole scene
    assigned_ids: set[int] | None = None
    #: tile assignment when assisting framebuffer distribution
    assigned_tile: Tile | None = None
    frames_rendered: int = 0

    def assigned_polygons(self) -> int:
        if self.assigned_ids is None:
            return self.tree.total_polygons()
        total = 0
        for nid in self.assigned_ids:
            if nid in self.tree:
                node = self.tree.node(nid)
                total += sum(n.n_polygons for n in node.iter_subtree())
        return total


class RenderService:
    """A render service deployed in a container on one host."""

    def __init__(self, name: str, container: ServiceContainer) -> None:
        from repro.services.wsdl import RENDER_SERVICE_WSDL

        if container.profile is None or not container.profile.can_render:
            raise ServiceError(
                f"host {container.host!r} cannot run a render service")
        self.name = name
        self.container = container
        self.endpoint = container.deploy(RENDER_SERVICE_WSDL)
        self.engine = RenderEngine(container.profile)
        self._sessions: dict[str, RenderSession] = {}
        #: shared scene copies, one per (data service, session)
        self._scene_cache: dict[tuple[str, str], SceneTree] = {}
        #: data-service subscription names, keyed like the scene cache
        self._subscriptions: dict[tuple[str, str],
                                  tuple[DataService, str]] = {}
        self._seq = itertools.count(1)
        #: exponentially-smoothed frames/second estimate (migration input)
        self.reported_fps: float = float("inf")
        #: per-service registry + event stream, scraped by the monitor
        self.telemetry = ServiceTelemetry(name, container.host,
                                          SERVICE_RENDER)
        self.telemetry.add_collector(self._collect_telemetry)

    def _collect_telemetry(self, registry) -> None:
        """Refresh scrape-time gauges from live service state."""
        if self.reported_fps != float("inf"):
            registry.gauge("rave_rs_fps").set(self.reported_fps)
        registry.gauge("rave_rs_utilisation").set(self.utilisation())
        registry.gauge("rave_rs_committed_polygons").set(
            self.committed_polygons())
        registry.gauge("rave_rs_sessions").set(len(self._sessions))

    @property
    def host(self) -> str:
        return self.container.host

    @property
    def network(self):
        return self.container.network

    @property
    def profile(self):
        return self.container.profile

    # -- capacity ---------------------------------------------------------------

    def capacity(self) -> RenderCapacity:
        return capacity_from_profile(self.profile)

    def committed_polygons(self) -> float:
        """Polygons this service must redraw each frame across sessions."""
        return float(sum(s.assigned_polygons()
                         for s in self._sessions.values()))

    def utilisation(self, target_fps: float = DEFAULT_TARGET_FPS) -> float:
        """Committed render work as a fraction of the target-fps budget."""
        budget = self.capacity().polygon_budget(target_fps)
        return self.committed_polygons() / budget if budget > 0 else float("inf")

    # -- session bootstrap ----------------------------------------------------------

    def create_render_session(self, data_service: DataService,
                              session_id: str,
                              subset_ids: set[int] | None = None,
                              introspective: bool = True,
                              charge_instance: bool = True) -> tuple[
                                  RenderSession, BootstrapTiming]:
        """Bootstrap from a data service (the Table 5 "service bootstrap").

        A shared scene copy is reused when this service already subscribes
        to the session — additional users then cost no extra bootstrap
        transfer ("a single copy of the data are stored").
        """
        clock = self.network.sim.clock
        t0 = clock.now
        if charge_instance:
            self.container.create_instance(
                "render", label=f"{session_id}@{self.name}")
        instance_seconds = clock.now - t0

        cache_key = (data_service.name, session_id)
        if cache_key in self._scene_cache:
            tree = self._scene_cache[cache_key]
            timing = BootstrapTiming(
                instance_seconds=instance_seconds, handshake_seconds=0.0,
                marshal_seconds=0.0, transfer_seconds=0.0,
                demarshal_seconds=0.0, nbytes=0)
        else:
            subscriber_name = f"{self.name}/{session_id}"
            tree, sub_timing = data_service.subscribe(
                session_id, subscriber_name=subscriber_name,
                host=self.host, kind=SERVICE_RENDER,
                interests=subset_ids,
                on_update=self._make_update_handler(cache_key),
                introspective=introspective,
                subscriber_cpu_factor=self.container.cpu_factor)
            self._scene_cache[cache_key] = tree
            self._subscriptions[cache_key] = (data_service, subscriber_name)
            timing = BootstrapTiming(
                instance_seconds=instance_seconds,
                handshake_seconds=sub_timing.handshake_seconds,
                marshal_seconds=sub_timing.marshal_seconds,
                transfer_seconds=sub_timing.transfer_seconds,
                demarshal_seconds=sub_timing.demarshal_seconds,
                nbytes=sub_timing.nbytes)

        rsid = f"rs-{self.name}-{next(self._seq):04d}"
        session = RenderSession(
            render_session_id=rsid, data_service=data_service,
            session_id=session_id, tree=tree, assigned_ids=subset_ids)
        self._sessions[rsid] = session
        self.telemetry.event(TELEMETRY_SESSION_CREATED, clock.now,
                             f"{rsid} for {session_id}@{data_service.name}")
        return session, timing

    def _make_update_handler(self, cache_key: tuple[str, str]):
        def handler(update: SceneUpdate) -> None:
            tree = self._scene_cache.get(cache_key)
            if tree is not None:
                update.apply(tree)
        return handler

    def assign_subset(self, rsid: str, subtree: SceneTree,
                      share_ids: set[int] | None,
                      from_host: str | None = None,
                      charge_time: bool = True) -> None:
        """Receive a scene subset for this session (dataset distribution).

        The paper: "The render service itself is thus given a subset of
        the scene tree, including the parent nodes to orientate the scene
        subset in the world."  The subset replaces the session's local
        copy; transfer + binary marshalling time is charged when
        ``from_host`` is given.
        """
        session = self.render_session(rsid)
        if charge_time and from_host is not None:
            from repro.network.marshalling import BinaryMarshaller

            marshaller = BinaryMarshaller(self.container.cpu_factor)
            result = marshaller.marshal(subtree.to_wire())
            transfer = self.network.transfer_time(from_host, self.host,
                                                  result.nbytes)
            _, demarshal = marshaller.demarshal(result.data)
            self.network.sim.clock.advance(
                result.cpu_seconds + transfer + demarshal)
        session.tree = subtree
        session.assigned_ids = (set(share_ids)
                                if share_ids is not None else None)
        key = (session.data_service.name, session.session_id)
        self._scene_cache[key] = subtree

    def repoint_data_service(self, old_name: str, new_ds: DataService,
                             session_id: str) -> None:
        """Follow a data-service failover: re-key the shared scene copy and
        subscription to the mirror, and re-install the update handler so
        the mirror's multicasts keep landing on the live local tree."""
        old_key = (old_name, session_id)
        new_key = (new_ds.name, session_id)
        if old_key in self._scene_cache:
            self._scene_cache[new_key] = self._scene_cache.pop(old_key)
        sub = self._subscriptions.pop(old_key, None)
        if sub is not None:
            _, subscriber_name = sub
            self._subscriptions[new_key] = (new_ds, subscriber_name)
            try:
                msub = new_ds.session(session_id).subscriber(subscriber_name)
            except SessionError:
                pass
            else:
                msub.on_update = self._make_update_handler(new_key)
        for session in self._sessions.values():
            if (session.data_service.name == old_name
                    and session.session_id == session_id):
                session.data_service = new_ds

    def render_session(self, rsid: str) -> RenderSession:
        try:
            return self._sessions[rsid]
        except KeyError:
            raise SessionError(
                f"no render session {rsid!r} on {self.name!r}") from None

    def render_sessions(self) -> list[RenderSession]:
        return list(self._sessions.values())

    def close_render_session(self, rsid: str) -> None:
        session = self.render_session(rsid)
        del self._sessions[rsid]
        self.telemetry.event(TELEMETRY_SESSION_CLOSED,
                             self.network.sim.clock.now, rsid)
        # Drop the shared copy (and the data-service subscription) when
        # nobody uses it any more.
        key = (session.data_service.name, session.session_id)
        if not any((s.data_service.name, s.session_id) == key
                   for s in self._sessions.values()):
            self._scene_cache.pop(key, None)
            sub = self._subscriptions.pop(key, None)
            if sub is not None:
                from repro.errors import SessionError

                data_service, subscriber_name = sub
                try:
                    data_service.unsubscribe(session.session_id,
                                             subscriber_name)
                except SessionError:
                    pass  # already unsubscribed out of band

    # -- rendering ---------------------------------------------------------------------

    def _draw_tree(self, session: RenderSession, camera: Camera,
                   fb: FrameBuffer, include_avatars: bool = True) -> int:
        """Rasterize the session's (assigned part of the) tree; returns
        polygons drawn."""
        tree = session.tree
        drawn = 0
        allowed = session.assigned_ids
        for node in tree:
            if allowed is not None and node.node_id not in allowed:
                # children of an assigned node are included via assignment
                if not any(a.node_id in allowed
                           for a in tree.path_to_root(node)):
                    continue
            world = tree.world_transform(node)
            is_identity = np.allclose(world, np.eye(4))
            if isinstance(node, MeshNode):
                mesh = node.mesh if is_identity else node.mesh.transformed(world)
                rasterize_mesh(mesh, camera, fb, shading="flat")
                drawn += mesh.n_triangles
            elif isinstance(node, PointCloudNode):
                pts = node.points if is_identity else (
                    node.points @ world[:3, :3].T + world[:3, 3]).astype(
                        np.float32)
                rasterize_points(pts, camera, fb, colors=node.colors,
                                 point_size=max(1, int(node.point_size)))
            elif isinstance(node, VolumeNode):
                img = raymarch_volume(node.volume, camera, fb.width,
                                      fb.height,
                                      opacity_scale=node.opacity_scale)
                solid = img.rgba[..., 3] > 0.05
                nearer = solid & (img.depth < fb.depth)
                fb.depth[nearer] = img.depth[nearer]
                fb.color[nearer] = np.clip(
                    img.rgba[..., :3][nearer] * 255.0, 0, 255).astype(
                        np.uint8)
            elif isinstance(node, AvatarNode) and include_avatars:
                cone = node.cone_geometry()
                rasterize_mesh(cone, camera, fb, shading="flat",
                               base_color=(240, 180, 60))
                drawn += cone.n_triangles
        session.frames_rendered += 1
        return drawn

    def render_view(self, rsid: str, camera: CameraNode | Camera,
                    width: int, height: int, offscreen: bool = True,
                    interleaved: int = 1, background=(12, 12, 24),
                    include_avatars: bool = True
                    ) -> tuple[FrameBuffer, RenderTiming]:
        """Render a full view; advances the clock by the modelled frame time."""
        session = self.render_session(rsid)
        cam = camera if isinstance(camera, Camera) else Camera.from_node(camera)
        fb = FrameBuffer(width, height, background=background)
        self._draw_tree(session, cam, fb, include_avatars=include_avatars)
        timing = self.engine.timing(session.assigned_polygons(),
                                    fb.pixels, offscreen=offscreen,
                                    interleaved=interleaved)
        self.network.sim.clock.advance(timing.total_seconds)
        self._update_reported_fps(timing)
        return fb, timing

    def render_views_parallel(self, requests: list[tuple],
                              offscreen: bool = True,
                              background=(12, 12, 24)
                              ) -> list[tuple[FrameBuffer, RenderTiming]]:
        """Serve several render requests across the machine's graphics pipes.

        "Multiple render sessions are supported by each render service, so
        multiple users may share available rendering resources" — and the
        Onyx brings three InfiniteReality pipes to that sharing.  Requests
        are ``(rsid, camera, width, height)`` tuples; they execute in
        batches of ``graphics_pipes``, each batch's wall time being its
        slowest member (pipes run concurrently), batches serialising.

        Returns per-request ``(framebuffer, timing)`` in input order; the
        simulated clock advances by the total schedule, not the sum of
        frame times.
        """
        from repro.network.clock import SimClock

        if not requests:
            return []
        pipes = max(1, self.profile.graphics_pipes)
        sim = self.network.sim
        real_clock = sim.clock
        results: list[tuple[FrameBuffer, RenderTiming]] = []
        total = 0.0
        try:
            for start in range(0, len(requests), pipes):
                batch = requests[start:start + pipes]
                slowest = 0.0
                for rsid, camera, width, height in batch:
                    scratch = SimClock(real_clock.now + total)
                    sim.clock = scratch
                    fb, timing = self.render_view(
                        rsid, camera, width, height, offscreen=offscreen,
                        background=background)
                    results.append((fb, timing))
                    slowest = max(slowest,
                                  scratch.now - (real_clock.now + total))
                total += slowest
        finally:
            sim.clock = real_clock
        real_clock.advance(total)
        return results

    def render_tile(self, rsid: str, camera: CameraNode | Camera,
                    tile: Tile, full_width: int, full_height: int,
                    background=(12, 12, 24)
                    ) -> tuple[FrameBuffer, RenderTiming]:
        """Render one tile of the shared view (framebuffer distribution).

        The whole view is rasterized at full resolution and the tile
        extracted — geometry work is not reduced by tiling, exactly the
        trade-off the cost model charges.
        """
        session = self.render_session(rsid)
        cam = camera if isinstance(camera, Camera) else Camera.from_node(camera)
        full = FrameBuffer(full_width, full_height, background=background)
        self._draw_tree(session, cam, full)
        timing = self.engine.timing(session.assigned_polygons(), tile.pixels,
                                    offscreen=True)
        self.network.sim.clock.advance(timing.total_seconds)
        self._update_reported_fps(timing)
        return full.extract(tile), timing

    def _update_reported_fps(self, timing: RenderTiming,
                             alpha: float = 0.3) -> None:
        fps = timing.fps
        if self.reported_fps == float("inf"):
            self.reported_fps = fps
        else:
            self.reported_fps = alpha * fps + (1 - alpha) * self.reported_fps
        registry = self.telemetry.registry
        registry.counter("rave_rs_frames_total").inc()
        registry.histogram("rave_rs_frame_seconds").observe(
            timing.total_seconds)

    def __repr__(self) -> str:
        return (f"RenderService(name={self.name!r}, host={self.host!r}, "
                f"sessions={len(self._sessions)})")
