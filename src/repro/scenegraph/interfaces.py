"""Introspection interfaces over scene nodes.

The paper (§5.5): "We are using introspection, where each node in the scene
graph is examined for implemented interfaces, and the appropriate interface
is used to extract the data and publish it on the network. ... many items
have a 'Position' field, so this is an interface we check for."

An :class:`Interface` names a set of fields; :func:`discover_interfaces`
returns the interfaces a node implements by checking which wire fields it
exposes.  The introspection marshaller charges per-interface-check and
per-field reflection costs — the mechanism behind the Table 5 bootstrap
bottleneck — while the GUI uses the same discovery to populate its
interaction menus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scenegraph.nodes import SceneNode


@dataclass(frozen=True)
class Interface:
    """A named group of wire fields."""

    name: str
    fields: tuple[str, ...]

    def implemented_by(self, wire_fields: dict) -> bool:
        return all(f in wire_fields for f in self.fields)


#: The interface catalogue, checked in order for every node (the paper's
#: maintenance-friendly "code sharing" scheme — and its marshalling cost).
INTERFACES: tuple[Interface, ...] = (
    Interface("Named", ("name",)),
    Interface("Position", ("position",)),
    Interface("ViewDirection", ("view_direction",)),
    Interface("Camera", ("position", "target", "up", "fov_degrees")),
    Interface("Transform", ("matrix",)),
    Interface("PolygonGeometry", ("vertices", "faces")),
    Interface("VertexColors", ("colors",)),
    Interface("PointGeometry", ("points",)),
    Interface("VoxelGeometry", ("values", "spacing", "origin")),
    Interface("IsoSurface", ("iso",)),
    Interface("Light", ("direction", "ambient")),
    Interface("Identity", ("user", "host")),
)


def discover_interfaces(node: SceneNode) -> list[Interface]:
    """All interfaces a node implements, from its wire-field surface."""
    fields = node.wire_fields()
    return [itf for itf in INTERFACES if itf.implemented_by(fields)]


def interface_fields(node: SceneNode) -> dict[str, list[str]]:
    """Interface name → field names, for GUI display and marshalling plans."""
    return {itf.name: list(itf.fields) for itf in discover_interfaces(node)}
