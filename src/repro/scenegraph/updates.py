"""The scene-update delta protocol.

"Changes made locally are transmitted back to the data service, propagating
to other members of this collaborative session" — these are the messages
that propagate.  Each update serialises to a wire dict (for either channel),
applies to a :class:`SceneTree`, and reports its payload size so the network
simulator and the interest-management filter can reason about it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SceneGraphError
from repro.scenegraph.nodes import (
    AvatarNode,
    CameraNode,
    SceneNode,
    node_from_wire,
    node_to_wire,
)
from repro.scenegraph.tree import SceneTree


def _array_bytes(value) -> int:
    if isinstance(value, np.ndarray):
        return value.nbytes
    if isinstance(value, dict):
        return sum(_array_bytes(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return sum(_array_bytes(v) for v in value)
    if isinstance(value, str):
        return len(value)
    return 8


@dataclass
class SceneUpdate:
    """Base update message."""

    KIND = "update"

    #: id of the node the update targets (semantics vary per subclass)
    node_id: int = -1
    #: originating client/service, for echo suppression and avatars
    origin: str = ""

    def apply(self, tree: SceneTree) -> None:
        raise NotImplementedError

    def touched_ids(self) -> set[int]:
        """Node ids this update modifies — interest management uses this."""
        return {self.node_id}

    def to_wire(self) -> dict:
        return {"kind": self.KIND, "node_id": self.node_id,
                "origin": self.origin}

    @property
    def payload_bytes(self) -> int:
        """Approximate binary wire size of the update body."""
        return _array_bytes(self.to_wire())


@dataclass
class AddNode(SceneUpdate):
    KIND = "add"

    #: parent under which the new node is attached
    parent_id: int = 0
    #: wire payload of the node (``node_to_wire`` output)
    node_payload: dict = field(default_factory=dict)

    @classmethod
    def of(cls, node: SceneNode, parent_id: int, node_id: int,
           origin: str = "") -> AddNode:
        return cls(node_id=node_id, origin=origin, parent_id=parent_id,
                   node_payload=node_to_wire(node))

    def apply(self, tree: SceneTree) -> None:
        if self.node_id in tree:
            raise SceneGraphError(f"node id {self.node_id} already present")
        node = node_from_wire(self.node_payload)
        tree.add(node, parent=self.parent_id, node_id=self.node_id)

    def to_wire(self) -> dict:
        return {**super().to_wire(), "parent_id": self.parent_id,
                "node_payload": self.node_payload}


@dataclass
class RemoveNode(SceneUpdate):
    KIND = "remove"

    def apply(self, tree: SceneTree) -> None:
        tree.remove(self.node_id)


@dataclass
class SetTransform(SceneUpdate):
    KIND = "set_transform"

    matrix: np.ndarray = field(default_factory=lambda: np.eye(4))

    def apply(self, tree: SceneTree) -> None:
        node = tree.node(self.node_id)
        if not hasattr(node, "set_matrix"):
            raise SceneGraphError(
                f"node {self.node_id} ({node.TYPE}) has no transform")
        node.set_matrix(self.matrix)

    def to_wire(self) -> dict:
        return {**super().to_wire(), "matrix": np.asarray(self.matrix)}


@dataclass
class SetCamera(SceneUpdate):
    KIND = "set_camera"

    position: np.ndarray = field(default_factory=lambda: np.zeros(3))
    target: np.ndarray = field(default_factory=lambda: np.zeros(3))
    fov_degrees: float = 45.0

    @classmethod
    def of(cls, camera: CameraNode, origin: str = "") -> SetCamera:
        return cls(node_id=camera.node_id, origin=origin,
                   position=camera.position.copy(),
                   target=camera.target.copy(),
                   fov_degrees=camera.fov_degrees)

    def apply(self, tree: SceneTree) -> None:
        node = tree.node(self.node_id)
        if not isinstance(node, CameraNode):
            raise SceneGraphError(f"node {self.node_id} is not a camera")
        node.position = np.asarray(self.position, dtype=np.float64).copy()
        node.target = np.asarray(self.target, dtype=np.float64).copy()
        node.fov_degrees = float(self.fov_degrees)

    def to_wire(self) -> dict:
        return {**super().to_wire(), "position": np.asarray(self.position),
                "target": np.asarray(self.target),
                "fov_degrees": self.fov_degrees}


@dataclass
class SetProperty(SceneUpdate):
    """Generic field update routed through the introspection surface."""

    KIND = "set_property"

    field_name: str = ""
    value: object = None

    def apply(self, tree: SceneTree) -> None:
        node = tree.node(self.node_id)
        if self.field_name not in node.wire_fields():
            raise SceneGraphError(
                f"node {self.node_id} ({node.TYPE}) has no field "
                f"{self.field_name!r}")
        node.apply_wire_fields({self.field_name: self.value})

    def to_wire(self) -> dict:
        return {**super().to_wire(), "field_name": self.field_name,
                "value": self.value}


@dataclass
class ModifyGeometry(SceneUpdate):
    """Replace a geometry node's payload (e.g. a new simulation timestep)."""

    KIND = "modify_geometry"

    fields: dict = field(default_factory=dict)

    def apply(self, tree: SceneTree) -> None:
        tree.node(self.node_id).apply_wire_fields(self.fields)

    def to_wire(self) -> dict:
        return {**super().to_wire(), "fields": self.fields}


@dataclass
class MoveAvatar(SceneUpdate):
    KIND = "move_avatar"

    position: np.ndarray = field(default_factory=lambda: np.zeros(3))
    view_direction: np.ndarray = field(
        default_factory=lambda: np.array([0.0, 0.0, -1.0]))

    def apply(self, tree: SceneTree) -> None:
        node = tree.node(self.node_id)
        if not isinstance(node, AvatarNode):
            raise SceneGraphError(f"node {self.node_id} is not an avatar")
        node.position = np.asarray(self.position, dtype=np.float64).copy()
        node.view_direction = np.asarray(self.view_direction,
                                         dtype=np.float64).copy()

    def to_wire(self) -> dict:
        return {**super().to_wire(), "position": np.asarray(self.position),
                "view_direction": np.asarray(self.view_direction)}


_UPDATE_KINDS: dict[str, type[SceneUpdate]] = {
    cls.KIND: cls
    for cls in (AddNode, RemoveNode, SetTransform, SetCamera, SetProperty,
                ModifyGeometry, MoveAvatar)
}


def update_from_wire(payload: dict) -> SceneUpdate:
    """Reconstruct an update message from its wire dict."""
    kind = payload.get("kind")
    try:
        cls = _UPDATE_KINDS[kind]  # type: ignore[index]
    except KeyError:
        raise SceneGraphError(f"unknown update kind {kind!r}") from None
    kwargs = {k: v for k, v in payload.items() if k != "kind"}
    return cls(**kwargs)
