"""Scene-tree substrate.

The data service "stores data in the form of a scene tree; nodes of the
tree may contain various types of data, such as voxels, point clouds or
polygons".  This subpackage is that tree:

- :mod:`repro.scenegraph.nodes` — the node hierarchy (groups, transforms,
  meshes, point clouds, volumes, cameras, avatars, lights);
- :mod:`repro.scenegraph.interfaces` — the introspection interfaces
  ("many items have a 'Position' field, so this is an interface we check
  for") used by marshalling and by the interaction GUI;
- :mod:`repro.scenegraph.tree` — the tree itself: ids, traversal, world
  transforms, subtree extraction with parent chains;
- :mod:`repro.scenegraph.updates` — the delta protocol between data service
  and render services;
- :mod:`repro.scenegraph.audit` — the persistent audit trail enabling
  asynchronous collaboration with recorded sessions;
- :mod:`repro.scenegraph.picking` — ray picking for click-to-select
  interaction.
"""

from repro.scenegraph.nodes import (
    AvatarNode,
    CameraNode,
    GroupNode,
    LightNode,
    MeshNode,
    PointCloudNode,
    SceneNode,
    TransformNode,
    VolumeNode,
    node_from_wire,
    node_to_wire,
)
from repro.scenegraph.interfaces import (
    INTERFACES,
    discover_interfaces,
    interface_fields,
)
from repro.scenegraph.tree import SceneTree
from repro.scenegraph.updates import (
    AddNode,
    ModifyGeometry,
    MoveAvatar,
    RemoveNode,
    SceneUpdate,
    SetCamera,
    SetProperty,
    SetTransform,
    update_from_wire,
)
from repro.scenegraph.audit import AuditTrail
from repro.scenegraph.picking import Ray, pick_mesh, pick_tree

__all__ = [
    "SceneNode",
    "GroupNode",
    "TransformNode",
    "MeshNode",
    "PointCloudNode",
    "VolumeNode",
    "CameraNode",
    "AvatarNode",
    "LightNode",
    "node_to_wire",
    "node_from_wire",
    "INTERFACES",
    "discover_interfaces",
    "interface_fields",
    "SceneTree",
    "SceneUpdate",
    "AddNode",
    "RemoveNode",
    "SetTransform",
    "SetCamera",
    "SetProperty",
    "ModifyGeometry",
    "MoveAvatar",
    "update_from_wire",
    "AuditTrail",
    "Ray",
    "pick_mesh",
    "pick_tree",
]
