"""The scene tree: id registry, traversal, transforms, subtree extraction.

Subtree extraction is load-bearing for workload distribution: "the render
service ... is thus given a subset of the scene tree, *including the parent
nodes to orientate the scene subset in the world*, along with the client's
camera" (paper §3.2.5).  :meth:`SceneTree.extract_subtree` implements
exactly that contract.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

import numpy as np

from repro.errors import SceneGraphError
from repro.scenegraph.nodes import (
    CameraNode,
    GroupNode,
    MeshNode,
    PointCloudNode,
    SceneNode,
    TransformNode,
    VolumeNode,
    node_from_wire,
    node_to_wire,
)


class SceneTree:
    """A rooted scene graph with stable integer node ids."""

    def __init__(self, name: str = "scene") -> None:
        self.name = name
        self.root = GroupNode(name="root")
        self._next_id = 0
        self._nodes: dict[int, SceneNode] = {}
        self._register(self.root)

    # -- registry -------------------------------------------------------------

    def _register(self, node: SceneNode, node_id: int | None = None) -> int:
        if node_id is None:
            node_id = self._next_id
        if node_id in self._nodes:
            raise SceneGraphError(f"node id {node_id} already in use")
        node.node_id = node_id
        self._nodes[node_id] = node
        self._next_id = max(self._next_id, node_id + 1)
        return node_id

    def node(self, node_id: int) -> SceneNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise SceneGraphError(f"no node with id {node_id}") from None

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[SceneNode]:
        return self.root.iter_subtree()

    # -- mutation --------------------------------------------------------------

    def add(self, node: SceneNode, parent: SceneNode | int | None = None,
            node_id: int | None = None) -> SceneNode:
        """Attach ``node`` (and any pre-built children) under ``parent``."""
        parent_node = self._resolve(parent) if parent is not None else self.root
        if parent_node.node_id not in self._nodes:
            raise SceneGraphError(f"parent {parent_node!r} is not in this tree")
        parent_node.add_child(node)
        self._register(node, node_id)
        for child in node.children:
            for sub in child.iter_subtree():
                self._register(sub)
        return node

    def remove(self, node: SceneNode | int) -> SceneNode:
        """Detach a subtree; all its ids are released."""
        target = self._resolve(node)
        if target is self.root:
            raise SceneGraphError("cannot remove the root node")
        if target.node_id not in self._nodes:
            raise SceneGraphError(f"{target!r} is not in this tree")
        assert target.parent is not None
        target.parent.remove_child(target)
        for sub in target.iter_subtree():
            self._nodes.pop(sub.node_id, None)
            sub.node_id = -1
        return target

    def _resolve(self, ref: SceneNode | int) -> SceneNode:
        return self.node(ref) if isinstance(ref, int) else ref

    # -- queries ----------------------------------------------------------------

    def find(self, predicate: Callable[[SceneNode], bool]) -> list[SceneNode]:
        return [n for n in self if predicate(n)]

    def find_by_name(self, name: str) -> list[SceneNode]:
        return self.find(lambda n: n.name == name)

    def geometry_nodes(self) -> list[SceneNode]:
        """All renderable payload nodes (meshes, points, volumes)."""
        return self.find(
            lambda n: isinstance(n, (MeshNode, PointCloudNode, VolumeNode)))

    def cameras(self) -> list[CameraNode]:
        return [n for n in self if isinstance(n, CameraNode)]

    def world_transform(self, node: SceneNode | int) -> np.ndarray:
        """Accumulated 4x4 transform from the root down to ``node``."""
        target = self._resolve(node)
        chain: list[np.ndarray] = []
        cur: SceneNode | None = target
        while cur is not None:
            if isinstance(cur, TransformNode):
                chain.append(cur.matrix)
            cur = cur.parent
        m = np.eye(4)
        for t in reversed(chain):
            m = m @ t
        return m

    def total_polygons(self) -> int:
        return sum(n.n_polygons for n in self)

    def total_payload_bytes(self) -> int:
        return sum(n.payload_bytes for n in self)

    def path_to_root(self, node: SceneNode | int) -> list[SceneNode]:
        """Node, its parent, ... up to and including the root."""
        target = self._resolve(node)
        path = [target]
        while path[-1].parent is not None:
            path.append(path[-1].parent)
        return path

    # -- subtree extraction (workload distribution contract) ---------------------

    def extract_subtree(self, node_ids: list[int],
                        camera: CameraNode | None = None) -> SceneTree:
        """Build a self-contained tree holding the requested nodes.

        The extracted tree preserves every ancestor on the path from the
        root to each requested node — in particular the transform chain —
        "to orientate the scene subset in the world".  Non-requested
        geometry siblings are omitted.  If ``camera`` is given, a copy is
        attached at the root (the client's camera rides along with the
        subset).
        """
        wanted: set[int] = set()
        for nid in node_ids:
            node = self.node(nid)
            # the node's whole subtree...
            for sub in node.iter_subtree():
                wanted.add(sub.node_id)
            # ...plus the ancestor chain
            for anc in self.path_to_root(node):
                wanted.add(anc.node_id)

        out = SceneTree(name=f"{self.name}[subset]")
        clones: dict[int, SceneNode] = {self.root.node_id: out.root}
        # Walk in pre-order so parents are cloned before children.
        for node in self.root.iter_subtree():
            if node is self.root or node.node_id not in wanted:
                continue
            clone = node_from_wire(node_to_wire(node))
            parent_clone = clones[node.parent.node_id]  # type: ignore[union-attr]
            parent_clone.add_child(clone)
            out._register(clone, node.node_id)
            clones[node.node_id] = clone
        if camera is not None:
            cam = node_from_wire(node_to_wire(camera))
            out.root.add_child(cam)
            out._register(cam)
        return out

    # -- whole-tree serialisation ---------------------------------------------

    def to_wire(self) -> dict:
        """Serialise the whole tree (used for bootstrap transfers)."""
        nodes = []
        for node in self.root.iter_subtree():
            if node is self.root:
                continue
            parent_id = node.parent.node_id  # type: ignore[union-attr]
            nodes.append({
                "id": node.node_id,
                "parent": parent_id,
                **node_to_wire(node),
            })
        return {"name": self.name, "nodes": nodes}

    @classmethod
    def from_wire(cls, payload: dict) -> SceneTree:
        tree = cls(name=str(payload.get("name", "scene")))
        for entry in payload.get("nodes", []):
            parent_id = int(entry["parent"])
            parent = tree.root if parent_id == tree.root.node_id else tree.node(
                parent_id)
            node = node_from_wire(entry)
            parent.add_child(node)
            tree._register(node, int(entry["id"]))
        return tree

    def __repr__(self) -> str:
        return (f"SceneTree(name={self.name!r}, nodes={len(self)}, "
                f"polygons={self.total_polygons()})")
