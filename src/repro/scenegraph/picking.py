"""Ray picking: click-to-select against scene geometry.

"All interactions are based on clicking to select/deselect an object, and
dragging" (paper §5.2).  The GUI turns a click into a :class:`Ray` through
the camera, and these functions return the nearest hit.  Intersection is
Möller–Trumbore, vectorized over all triangles of a mesh at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.meshes import Mesh
from repro.scenegraph.nodes import CameraNode, MeshNode, SceneNode
from repro.scenegraph.tree import SceneTree


@dataclass(frozen=True)
class Ray:
    origin: np.ndarray
    direction: np.ndarray  # unit length

    @classmethod
    def through_pixel(cls, camera: CameraNode, px: float, py: float,
                      width: int, height: int) -> Ray:
        """Ray from the camera through pixel (px, py) of a width x height view."""
        fwd = camera.view_direction()
        up = camera.up / np.linalg.norm(camera.up)
        if abs(float(fwd @ up)) > 0.999:
            up = (np.array([1.0, 0.0, 0.0])
                  if abs(fwd[0]) < 0.9 else np.array([0.0, 1.0, 0.0]))
        right = np.cross(fwd, up)
        right /= np.linalg.norm(right)
        true_up = np.cross(right, fwd)
        aspect = width / height
        tan_half = np.tan(np.radians(camera.fov_degrees) / 2.0)
        # NDC in [-1, 1], y up
        x = (2.0 * (px + 0.5) / width - 1.0) * tan_half * aspect
        y = (1.0 - 2.0 * (py + 0.5) / height) * tan_half
        d = fwd + x * right + y * true_up
        d = d / np.linalg.norm(d)
        return cls(origin=camera.position.copy(), direction=d)


@dataclass(frozen=True)
class PickHit:
    node: SceneNode | None
    triangle: int
    distance: float
    point: np.ndarray


def intersect_mesh(ray: Ray, mesh: Mesh, eps: float = 1e-9
                   ) -> tuple[int, float] | None:
    """Nearest triangle hit as ``(face_index, distance)`` or ``None``.

    Vectorized Möller–Trumbore over the whole face array.
    """
    if mesh.n_triangles == 0:
        return None
    v0, v1, v2 = mesh.triangle_corners()
    v0 = v0.astype(np.float64)
    e1 = v1.astype(np.float64) - v0
    e2 = v2.astype(np.float64) - v0
    d = ray.direction
    h = np.cross(d[None, :], e2)
    a = np.einsum("ij,ij->i", e1, h)
    parallel = np.abs(a) < eps
    f = np.where(parallel, 0.0, 1.0 / np.where(parallel, 1.0, a))
    s = ray.origin[None, :] - v0
    u = f * np.einsum("ij,ij->i", s, h)
    q = np.cross(s, e1)
    v = f * (q @ d)
    t = f * np.einsum("ij,ij->i", q, e2)
    hit = (~parallel & (u >= 0) & (v >= 0) & (u + v <= 1) & (t > eps))
    if not hit.any():
        return None
    t = np.where(hit, t, np.inf)
    idx = int(np.argmin(t))
    return idx, float(t[idx])


def pick_mesh(ray: Ray, mesh: Mesh) -> PickHit | None:
    res = intersect_mesh(ray, mesh)
    if res is None:
        return None
    idx, dist = res
    return PickHit(node=None, triangle=idx, distance=dist,
                   point=ray.origin + dist * ray.direction)


def pick_tree(ray: Ray, tree: SceneTree) -> PickHit | None:
    """Nearest hit across all mesh nodes, honouring world transforms."""
    best: PickHit | None = None
    for node in tree:
        if not isinstance(node, MeshNode):
            continue
        world = tree.world_transform(node)
        mesh = node.mesh
        if not np.allclose(world, np.eye(4)):
            mesh = mesh.transformed(world)
        res = intersect_mesh(ray, mesh)
        if res is None:
            continue
        idx, dist = res
        if best is None or dist < best.distance:
            best = PickHit(node=node, triangle=idx, distance=dist,
                           point=ray.origin + dist * ray.direction)
    return best
