"""Scene-graph node types.

Nodes carry the renderable payloads (meshes, point clouds, voxel volumes),
structure (groups, transforms), viewing state (cameras, lights) and
collaboration state (avatars).  Every node exposes *wire fields* — the
introspection surface the marshaller and the interaction GUI walk, exactly
as the paper describes ("each node in the scene graph is examined for
implemented interfaces").

``node_to_wire`` / ``node_from_wire`` give a pickle-free serialisation:
plain dicts of primitives plus ``(dtype, shape, bytes)`` triples for arrays,
consumable by both the SOAP (XML/base64) and binary channels.
"""

from __future__ import annotations

import numpy as np

from repro.data.meshes import Mesh
from repro.data.volumes import VoxelVolume
from repro.errors import SceneGraphError


def _identity4() -> np.ndarray:
    return np.eye(4, dtype=np.float64)


class SceneNode:
    """Base scene node.

    ``node_id`` is assigned when the node joins a :class:`SceneTree`; a
    detached node has id ``-1``.
    """

    #: wire type tag, overridden per subclass
    TYPE = "node"

    def __init__(self, name: str = "") -> None:
        self.name = name or self.TYPE
        self.node_id: int = -1
        self.parent: SceneNode | None = None
        self.children: list[SceneNode] = []

    # -- structure ----------------------------------------------------------

    def add_child(self, child: SceneNode) -> SceneNode:
        if child is self:
            raise SceneGraphError("a node cannot be its own child")
        ancestor = self
        while ancestor is not None:
            if ancestor is child:
                raise SceneGraphError(
                    f"adding {child.name!r} under {self.name!r} creates a cycle"
                )
            ancestor = ancestor.parent
        if child.parent is not None:
            child.parent.children.remove(child)
        child.parent = self
        self.children.append(child)
        return child

    def remove_child(self, child: SceneNode) -> None:
        try:
            self.children.remove(child)
        except ValueError:
            raise SceneGraphError(
                f"{child.name!r} is not a child of {self.name!r}"
            ) from None
        child.parent = None

    def iter_subtree(self):
        """Depth-first pre-order traversal including self."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    # -- introspection surface ----------------------------------------------

    def wire_fields(self) -> dict:
        """Field name → value mapping serialised on the wire.

        Subclasses extend; values are primitives, numpy arrays, or nested
        dicts of those.
        """
        return {"name": self.name}

    def apply_wire_fields(self, fields: dict) -> None:
        self.name = str(fields.get("name", self.name))

    #: interaction verbs the GUI discovers by interrogation (paper §5.2)
    def supported_interactions(self) -> list[str]:
        return ["select", "rename"]

    # -- cost (consumed by repro.core.cost) ----------------------------------

    @property
    def n_polygons(self) -> int:
        return 0

    @property
    def n_points(self) -> int:
        return 0

    @property
    def n_voxels(self) -> int:
        return 0

    @property
    def texture_bytes(self) -> int:
        return 0

    @property
    def payload_bytes(self) -> int:
        return 0

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(id={self.node_id}, name={self.name!r},"
                f" children={len(self.children)})")


class GroupNode(SceneNode):
    """Pure structural grouping."""

    TYPE = "group"


class TransformNode(SceneNode):
    """A 4x4 affine transform applied to its subtree."""

    TYPE = "transform"

    def __init__(self, matrix: np.ndarray | None = None, name: str = "") -> None:
        super().__init__(name)
        self.matrix = _identity4() if matrix is None else self._check(matrix)

    @staticmethod
    def _check(matrix) -> np.ndarray:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape != (4, 4):
            raise SceneGraphError(f"transform must be 4x4; got {matrix.shape}")
        return matrix.copy()

    def set_matrix(self, matrix) -> None:
        self.matrix = self._check(matrix)

    @classmethod
    def from_translation(cls, offset, name: str = "") -> TransformNode:
        m = _identity4()
        m[:3, 3] = np.asarray(offset, dtype=np.float64)
        return cls(m, name)

    @classmethod
    def from_scale(cls, factor: float, name: str = "") -> TransformNode:
        m = _identity4()
        m[0, 0] = m[1, 1] = m[2, 2] = float(factor)
        return cls(m, name)

    @classmethod
    def from_rotation_z(cls, angle: float, name: str = "") -> TransformNode:
        m = _identity4()
        c, s = np.cos(angle), np.sin(angle)
        m[0, 0], m[0, 1], m[1, 0], m[1, 1] = c, -s, s, c
        return cls(m, name)

    def wire_fields(self) -> dict:
        return {**super().wire_fields(), "matrix": self.matrix}

    def apply_wire_fields(self, fields: dict) -> None:
        super().apply_wire_fields(fields)
        if "matrix" in fields:
            self.set_matrix(fields["matrix"])

    def supported_interactions(self) -> list[str]:
        return super().supported_interactions() + ["translate", "rotate",
                                                   "scale"]


class MeshNode(SceneNode):
    """Polygonal geometry leaf."""

    TYPE = "mesh"

    def __init__(self, mesh: Mesh, name: str = "") -> None:
        super().__init__(name or mesh.name)
        self.mesh = mesh

    @property
    def n_polygons(self) -> int:
        return self.mesh.n_triangles

    @property
    def payload_bytes(self) -> int:
        return self.mesh.byte_size

    @property
    def texture_bytes(self) -> int:
        return self.mesh.texture_bytes

    def wire_fields(self) -> dict:
        fields = {
            **super().wire_fields(),
            "vertices": self.mesh.vertices,
            "faces": self.mesh.faces,
        }
        if self.mesh.colors is not None:
            fields["colors"] = self.mesh.colors
        if self.mesh.uv is not None:
            fields["uv"] = self.mesh.uv
        if self.mesh.texture is not None:
            fields["texture_image"] = self.mesh.texture.image
            fields["texture_name"] = self.mesh.texture.name
        return fields

    def apply_wire_fields(self, fields: dict) -> None:
        super().apply_wire_fields(fields)
        if "vertices" in fields or "faces" in fields:
            texture = None
            if "texture_image" in fields:
                from repro.data.textures import Texture

                texture = Texture(fields["texture_image"],
                                  name=str(fields.get("texture_name",
                                                      "texture")))
            self.mesh = Mesh(
                fields.get("vertices", self.mesh.vertices),
                fields.get("faces", self.mesh.faces),
                fields.get("colors", None),
                name=self.name,
                uv=fields.get("uv", None),
                texture=texture,
            )

    def supported_interactions(self) -> list[str]:
        return super().supported_interactions() + ["translate", "rotate",
                                                   "scale", "recolor"]


class PointCloudNode(SceneNode):
    """Point-based geometry leaf (paper future work, implemented)."""

    TYPE = "points"

    def __init__(self, points: np.ndarray, colors: np.ndarray | None = None,
                 point_size: float = 1.0, name: str = "") -> None:
        super().__init__(name)
        points = np.ascontiguousarray(points, dtype=np.float32)
        if points.ndim != 2 or points.shape[1] != 3:
            raise SceneGraphError(f"points must be (n, 3); got {points.shape}")
        if colors is not None:
            colors = np.ascontiguousarray(colors, dtype=np.float32)
            if colors.shape != points.shape:
                raise SceneGraphError("colors must match points shape")
        self.points = points
        self.colors = colors
        self.point_size = float(point_size)

    @property
    def n_points(self) -> int:
        return len(self.points)

    @property
    def payload_bytes(self) -> int:
        size = self.points.nbytes
        if self.colors is not None:
            size += self.colors.nbytes
        return size

    def wire_fields(self) -> dict:
        fields = {
            **super().wire_fields(),
            "points": self.points,
            "point_size": self.point_size,
        }
        if self.colors is not None:
            fields["colors"] = self.colors
        return fields

    def apply_wire_fields(self, fields: dict) -> None:
        super().apply_wire_fields(fields)
        if "points" in fields:
            self.points = np.ascontiguousarray(fields["points"],
                                               dtype=np.float32)
        if "colors" in fields:
            self.colors = np.ascontiguousarray(fields["colors"],
                                               dtype=np.float32)
        if "point_size" in fields:
            self.point_size = float(fields["point_size"])


class VolumeNode(SceneNode):
    """Voxel-volume leaf (paper future work, implemented)."""

    TYPE = "volume"

    def __init__(self, volume: VoxelVolume, iso: float = 0.5,
                 opacity_scale: float = 1.0, name: str = "") -> None:
        super().__init__(name or volume.name)
        self.volume = volume
        self.iso = float(iso)
        self.opacity_scale = float(opacity_scale)

    @property
    def n_voxels(self) -> int:
        return int(np.prod(self.volume.shape))

    @property
    def payload_bytes(self) -> int:
        return self.volume.byte_size

    def wire_fields(self) -> dict:
        return {
            **super().wire_fields(),
            "values": self.volume.values,
            "spacing": np.asarray(self.volume.spacing),
            "origin": np.asarray(self.volume.origin),
            "iso": self.iso,
            "opacity_scale": self.opacity_scale,
        }

    def apply_wire_fields(self, fields: dict) -> None:
        super().apply_wire_fields(fields)
        if "values" in fields:
            self.volume = VoxelVolume(
                fields["values"],
                tuple(np.asarray(fields.get("spacing", self.volume.spacing),
                                 dtype=float)),
                tuple(np.asarray(fields.get("origin", self.volume.origin),
                                 dtype=float)),
                name=self.name,
            )
        if "iso" in fields:
            self.iso = float(fields["iso"])
        if "opacity_scale" in fields:
            self.opacity_scale = float(fields["opacity_scale"])


class CameraNode(SceneNode):
    """A viewing camera.  Every client owns one; shared for tiled rendering."""

    TYPE = "camera"

    def __init__(self, position=(0.0, 0.0, 5.0), target=(0.0, 0.0, 0.0),
                 up=(0.0, 1.0, 0.0), fov_degrees: float = 45.0,
                 name: str = "") -> None:
        super().__init__(name)
        self.position = np.asarray(position, dtype=np.float64).copy()
        self.target = np.asarray(target, dtype=np.float64).copy()
        self.up = np.asarray(up, dtype=np.float64).copy()
        self.fov_degrees = float(fov_degrees)

    def look(self, position=None, target=None) -> None:
        if position is not None:
            self.position = np.asarray(position, dtype=np.float64).copy()
        if target is not None:
            self.target = np.asarray(target, dtype=np.float64).copy()

    def view_direction(self) -> np.ndarray:
        d = self.target - self.position
        n = np.linalg.norm(d)
        return d / n if n > 0 else np.array([0.0, 0.0, -1.0])

    def orbit(self, azimuth: float, elevation: float = 0.0) -> None:
        """Rotate the camera around its target (the GUI's drag gesture)."""
        rel = self.position - self.target
        r = np.linalg.norm(rel)
        if r == 0:
            return
        theta = np.arctan2(rel[1], rel[0]) + azimuth
        phi = np.arccos(np.clip(rel[2] / r, -1.0, 1.0)) - elevation
        phi = np.clip(phi, 1e-3, np.pi - 1e-3)
        self.position = self.target + r * np.array([
            np.sin(phi) * np.cos(theta),
            np.sin(phi) * np.sin(theta),
            np.cos(phi),
        ])

    def wire_fields(self) -> dict:
        return {
            **super().wire_fields(),
            "position": self.position,
            "target": self.target,
            "up": self.up,
            "fov_degrees": self.fov_degrees,
        }

    def apply_wire_fields(self, fields: dict) -> None:
        super().apply_wire_fields(fields)
        for attr in ("position", "target", "up"):
            if attr in fields:
                setattr(self, attr,
                        np.asarray(fields[attr], dtype=np.float64).copy())
        if "fov_degrees" in fields:
            self.fov_degrees = float(fields["fov_degrees"])

    def supported_interactions(self) -> list[str]:
        return super().supported_interactions() + ["orbit", "zoom", "pan",
                                                   "rotate-around-selection"]


class AvatarNode(SceneNode):
    """Collaborator representation: "a cone pointing in the direction of the
    user's view, and the name of the user or host" (paper Figure 3)."""

    TYPE = "avatar"

    def __init__(self, user: str, host: str = "", position=(0.0, 0.0, 5.0),
                 view_direction=(0.0, 0.0, -1.0), name: str = "") -> None:
        super().__init__(name or f"avatar:{user}")
        self.user = user
        self.host = host
        self.position = np.asarray(position, dtype=np.float64).copy()
        self.view_direction = np.asarray(view_direction, dtype=np.float64).copy()

    @property
    def label(self) -> str:
        return self.host or self.user

    def follow_camera(self, camera: CameraNode) -> None:
        self.position = camera.position.copy()
        self.view_direction = camera.view_direction()

    def cone_geometry(self, size: float = 0.25, n_around: int = 8) -> Mesh:
        """The avatar's renderable cone, apex pointing along the view."""
        d = self.view_direction
        norm = np.linalg.norm(d)
        d = d / norm if norm > 0 else np.array([0.0, 0.0, -1.0])
        apex = self.position + d * size
        base_center = self.position
        ref = np.array([0.0, 0.0, 1.0]) if abs(d[2]) < 0.9 else np.array(
            [1.0, 0.0, 0.0])
        u = np.cross(d, ref)
        u /= np.linalg.norm(u)
        v = np.cross(d, u)
        ang = np.linspace(0, 2 * np.pi, n_around, endpoint=False)
        ring = (base_center[None, :]
                + 0.4 * size * (np.cos(ang)[:, None] * u[None, :]
                                + np.sin(ang)[:, None] * v[None, :]))
        verts = np.concatenate([ring, apex[None, :], base_center[None, :]])
        i = np.arange(n_around)
        j = (i + 1) % n_around
        side = np.stack([i, j, np.full(n_around, n_around)], axis=1)
        base = np.stack([j, i, np.full(n_around, n_around + 1)], axis=1)
        return Mesh(verts, np.concatenate([side, base]).astype(np.int32),
                    name=self.name)

    def wire_fields(self) -> dict:
        return {
            **super().wire_fields(),
            "user": self.user,
            "host": self.host,
            "position": self.position,
            "view_direction": self.view_direction,
        }

    def apply_wire_fields(self, fields: dict) -> None:
        super().apply_wire_fields(fields)
        if "user" in fields:
            self.user = str(fields["user"])
        if "host" in fields:
            self.host = str(fields["host"])
        for attr in ("position", "view_direction"):
            if attr in fields:
                setattr(self, attr,
                        np.asarray(fields[attr], dtype=np.float64).copy())


class LightNode(SceneNode):
    """Directional light used by the shading model."""

    TYPE = "light"

    def __init__(self, direction=(-0.4, -0.6, -1.0), color=(1.0, 1.0, 1.0),
                 ambient: float = 0.25, name: str = "") -> None:
        super().__init__(name)
        self.direction = np.asarray(direction, dtype=np.float64).copy()
        self.color = np.asarray(color, dtype=np.float64).copy()
        self.ambient = float(ambient)

    def wire_fields(self) -> dict:
        return {
            **super().wire_fields(),
            "direction": self.direction,
            "color": self.color,
            "ambient": self.ambient,
        }

    def apply_wire_fields(self, fields: dict) -> None:
        super().apply_wire_fields(fields)
        if "direction" in fields:
            self.direction = np.asarray(fields["direction"],
                                        dtype=np.float64).copy()
        if "color" in fields:
            self.color = np.asarray(fields["color"], dtype=np.float64).copy()
        if "ambient" in fields:
            self.ambient = float(fields["ambient"])


#: wire type tag → class, for deserialisation
NODE_TYPES: dict[str, type[SceneNode]] = {
    cls.TYPE: cls
    for cls in (GroupNode, TransformNode, MeshNode, PointCloudNode,
                VolumeNode, CameraNode, AvatarNode, LightNode)
}


def _blank(cls: type[SceneNode]) -> SceneNode:
    """Construct an empty instance for deserialisation."""
    if cls is MeshNode:
        return MeshNode(Mesh(np.zeros((0, 3), np.float32),
                             np.zeros((0, 3), np.int32)))
    if cls is PointCloudNode:
        return PointCloudNode(np.zeros((0, 3), np.float32))
    if cls is VolumeNode:
        return VolumeNode(VoxelVolume(np.zeros((2, 2, 2), np.float32)))
    if cls is AvatarNode:
        return AvatarNode(user="")
    return cls()


def node_to_wire(node: SceneNode) -> dict:
    """Serialise one node (without children) to a wire dict."""
    return {"type": node.TYPE, "fields": node.wire_fields()}


def node_from_wire(payload: dict) -> SceneNode:
    """Reconstruct a node from :func:`node_to_wire` output."""
    try:
        cls = NODE_TYPES[payload["type"]]
    except KeyError:
        raise SceneGraphError(
            f"unknown node type {payload.get('type')!r}"
        ) from None
    node = _blank(cls)
    node.apply_wire_fields(payload.get("fields", {}))
    return node
