"""The audit trail: persistent, replayable session recording.

Paper §3.1.1: "The data are intermittently streamed to disk, recording any
changes that are made in the form of an audit trail.  A recorded session may
be played back at a later date; this enables users to append to a recorded
session, collaborating asynchronously with previous users."

The on-disk format is a self-describing binary stream (no pickle): a header,
then length-prefixed records of (timestamp, wire-dict) encoded with the
binary marshaller's dict codec.  Appending re-opens the file in append mode;
playback applies updates to a fresh tree, optionally up to a cut-off time.
"""

from __future__ import annotations

import struct
from pathlib import Path
from collections.abc import Iterator

from repro.errors import DataFormatError
from repro.scenegraph.tree import SceneTree
from repro.scenegraph.updates import SceneUpdate, update_from_wire

_MAGIC = b"RAVEAUD1"


class AuditTrail:
    """Append-only log of timestamped scene updates."""

    def __init__(self) -> None:
        self._records: list[tuple[float, SceneUpdate]] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[tuple[float, SceneUpdate]]:
        return iter(self._records)

    @property
    def duration(self) -> float:
        if not self._records:
            return 0.0
        return self._records[-1][0] - self._records[0][0]

    def record(self, time: float, update: SceneUpdate) -> None:
        """Append an update; timestamps must be non-decreasing."""
        if self._records and time < self._records[-1][0]:
            raise ValueError(
                f"audit timestamps must be monotonic: {time} < "
                f"{self._records[-1][0]}")
        self._records.append((float(time), update))

    # -- playback ---------------------------------------------------------------

    def playback(self, until: float | None = None,
                 tree: SceneTree | None = None) -> SceneTree:
        """Apply recorded updates (up to ``until``) onto a tree.

        With the default fresh tree this reconstructs the session state at
        any point in time; with an existing tree it appends a recorded
        session onto live state (the paper's asynchronous collaboration).
        """
        tree = tree if tree is not None else SceneTree(name="playback")
        for t, update in self._records:
            if until is not None and t > until:
                break
            update.apply(tree)
        return tree

    def updates_between(self, t0: float, t1: float) -> list[SceneUpdate]:
        return [u for t, u in self._records if t0 <= t <= t1]

    # -- persistence --------------------------------------------------------------

    def save(self, path: str | Path) -> int:
        """Write the whole trail; returns bytes written."""
        from repro.network.marshalling import encode_value

        path = Path(path)
        with path.open("wb") as fh:
            fh.write(_MAGIC)
            fh.write(struct.pack("<Q", len(self._records)))
            for t, update in self._records:
                body = encode_value(update.to_wire())
                fh.write(struct.pack("<dI", t, len(body)))
                fh.write(body)
        return path.stat().st_size

    def append_to(self, path: str | Path) -> None:
        """Append this trail's records to an existing file on disk."""
        from repro.network.marshalling import encode_value

        path = Path(path)
        existing = AuditTrail.load(path)
        if (self._records and existing._records
                and self._records[0][0] < existing._records[-1][0]):
            raise ValueError("appended records precede the recorded session")
        with path.open("r+b") as fh:
            fh.seek(len(_MAGIC))
            fh.write(struct.pack("<Q", len(existing) + len(self)))
            fh.seek(0, 2)  # end
            for t, update in self._records:
                body = encode_value(update.to_wire())
                fh.write(struct.pack("<dI", t, len(body)))
                fh.write(body)

    @classmethod
    def load(cls, path: str | Path) -> AuditTrail:
        from repro.network.marshalling import decode_value

        path = Path(path)
        trail = cls()
        with path.open("rb") as fh:
            magic = fh.read(len(_MAGIC))
            if magic != _MAGIC:
                raise DataFormatError(f"{path.name}: not an audit-trail file")
            (count,) = struct.unpack("<Q", fh.read(8))
            for _ in range(count):
                head = fh.read(12)
                if len(head) != 12:
                    raise DataFormatError(f"{path.name}: truncated record")
                t, size = struct.unpack("<dI", head)
                body = fh.read(size)
                if len(body) != size:
                    raise DataFormatError(f"{path.name}: truncated body")
                trail._records.append((t, update_from_wire(decode_value(body))))
        return trail
