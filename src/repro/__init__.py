"""RAVE — Resource-Aware Visualization Environment (reproduction).

A from-scratch Python reproduction of *"Automatic Distribution of Rendering
Workloads in a Grid Enabled Collaborative Visualization Environment"*
(Grimstead, Avis & Walker, SC 2004): a grid-enabled collaborative
visualization system with a persistent data service, render services that
draw on- or off-screen, thin clients down to PDA class, UDDI/WSDL/SOAP
discovery, and — the core contribution — automatic, capacity-aware
distribution and migration of rendering workloads.

Quick start::

    from repro import build_testbed
    from repro.data import galleon

    tb = build_testbed()
    session = tb.publish_model("demo", galleon().normalized())
    rs = tb.render_service("centrino")
    rsession, boot = rs.create_render_session(tb.data_service, "demo")
    client = tb.thin_client("viewer")
    client.attach(rs, rsession.render_session_id)
    frame, timing = client.request_frame(200, 200)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.testbed import Testbed, build_testbed
from repro.core import (
    CapacityReport,
    CollaborativeSession,
    DatasetDistributor,
    FramebufferDistributor,
    RenderCapacity,
    RenderServiceScheduler,
    SessionGridManager,
    TenantQuota,
    WorkloadMigrator,
)
from repro.errors import (
    InsufficientResources,
    RaveError,
    RenderError,
    SceneGraphError,
    ServiceError,
    TooManyRequestsError,
)
from repro.render import Camera, FrameBuffer, RenderEngine
from repro.scenegraph import SceneTree, MeshNode, CameraNode
from repro.services import (
    DataService,
    RenderService,
    ServiceContainer,
    ThinClient,
)

__version__ = "1.0.0"

__all__ = [
    "Testbed",
    "build_testbed",
    "CollaborativeSession",
    "SessionGridManager",
    "TenantQuota",
    "RenderServiceScheduler",
    "DatasetDistributor",
    "FramebufferDistributor",
    "WorkloadMigrator",
    "RenderCapacity",
    "CapacityReport",
    "Camera",
    "FrameBuffer",
    "RenderEngine",
    "SceneTree",
    "MeshNode",
    "CameraNode",
    "DataService",
    "RenderService",
    "ServiceContainer",
    "ThinClient",
    "RaveError",
    "SceneGraphError",
    "RenderError",
    "ServiceError",
    "InsufficientResources",
    "TooManyRequestsError",
    "__version__",
]
