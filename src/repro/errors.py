"""Exception hierarchy shared across the RAVE reproduction.

The paper's testbed refuses a render request with "an explanatory error
message" when insufficient resources are available; :class:`InsufficientResources`
carries that explanation.  The remaining exceptions mirror the failure modes
of the grid-services substrate (discovery, marshalling, protocol framing).
"""

from __future__ import annotations


class RaveError(Exception):
    """Base class for all errors raised by this package."""


class SceneGraphError(RaveError):
    """Structural violation in a scene tree (unknown node, cycle, bad parent)."""


class RenderError(RaveError):
    """Failure inside the software renderer (bad geometry, camera, buffer)."""


class NetworkError(RaveError):
    """Failure in the simulated network (unknown host, no route, link down)."""


class ServiceError(RaveError):
    """Failure in a Grid/Web service call."""


class SoapFault(ServiceError):
    """SOAP-level fault returned by a service.

    Mirrors a SOAP 1.2 ``Fault`` element: ``code`` is the fault code
    (``Sender``/``Receiver``) and ``reason`` the human-readable cause.
    """

    def __init__(self, code: str, reason: str) -> None:
        super().__init__(f"{code}: {reason}")
        self.code = code
        self.reason = reason


class CallTimeout(ServiceError):
    """A remote call exceeded its per-attempt timeout or overall deadline.

    ``elapsed`` is how long the caller waited (simulated seconds) and
    ``attempts`` how many tries were made before giving up.
    """

    def __init__(self, message: str, *, elapsed: float = 0.0,
                 attempts: int = 0) -> None:
        super().__init__(message)
        self.elapsed = elapsed
        self.attempts = attempts


class CircuitOpenError(ServiceError):
    """A circuit breaker refused the call without attempting it.

    Raised while the breaker for a repeatedly-failing service is open;
    ``retry_at`` is the simulated time at which the breaker will next
    admit a probe call.
    """

    def __init__(self, message: str, *, retry_at: float = 0.0) -> None:
        super().__init__(message)
        self.retry_at = retry_at


class DiscoveryError(ServiceError):
    """UDDI lookup failed (unknown business, tModel, or service key)."""


class MarshallingError(ServiceError):
    """A value could not be marshalled to, or demarshalled from, the wire."""


class InsufficientResources(ServiceError):
    """No combination of render services can host the requested dataset.

    The paper: "if insufficient resources are available, the request is
    refused with an explanatory error message".  ``explanation`` is that
    message; ``required`` and ``available`` summarise the capacity gap.
    """

    def __init__(self, explanation: str, *, required: float = 0.0,
                 available: float = 0.0) -> None:
        super().__init__(explanation)
        self.explanation = explanation
        self.required = required
        self.available = available


class TooManyRequestsError(ServiceError):
    """The grid explicitly refused a request because it is full (HTTP 429).

    This is *backpressure*, not a failure: the service is healthy but at
    capacity, so the caller must not retry immediately, must not count
    the refusal against a circuit breaker, and should surface the
    explanation to the user.  ``retry_after`` is the server's hint (in
    simulated seconds) for when capacity may free up; ``queue_position``
    is set when the request was dropped from (or refused a place in) a
    bounded admission queue.
    """

    status = 429

    def __init__(self, message: str, *, retry_after: float = 0.0,
                 queue_position: int | None = None,
                 tenant: str = "") -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.queue_position = queue_position
        self.tenant = tenant


class SessionError(ServiceError):
    """Invalid session operation (unknown session, duplicate subscription)."""


class DataFormatError(RaveError):
    """A model file (PLY/OBJ) or volume file is malformed."""
