"""One-call construction of the paper's testbed.

Builds the §4.4 environment: the six machines on 100 Mbit switched
ethernet, the Zaurus on an 11 Mbit 802.11b cell, service containers, a UDDI
registry (jUDDI stand-in) with the RAVE business and both technical models,
a data service, and render services on every render-capable machine — all
over one simulated clock.

Every example, test and benchmark that needs "the paper's setup" starts
from :func:`build_testbed` so the topology lives in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.recruitment import (
    DATA_TMODEL,
    FARM_TMODEL,
    MONITOR_TMODEL,
    RAVE_BUSINESS,
    RENDER_TMODEL,
    Recruiter,
)
from repro.data.meshes import Mesh
from repro.errors import ServiceError
from repro.hardware.profiles import TESTBED as PROFILES
from repro.network.simnet import Network, WirelessCell
from repro.scenegraph.nodes import MeshNode
from repro.scenegraph.tree import SceneTree
from repro.services.clients import ActiveRenderClient, ThinClient
from repro.services.container import ServiceContainer
from repro.services.data_service import DataService, DataSession
from repro.services.monitor import MonitorService
from repro.services.render_service import RenderService
from repro.services.uddi import AccessPoint, UddiClient, UddiRegistry
from repro.services.wsdl import (
    DATA_SERVICE_WSDL,
    FRAME_QUEUE_WSDL,
    MONITOR_SERVICE_WSDL,
    RENDER_SERVICE_WSDL,
)

#: machines that run render services in the default testbed
RENDER_HOSTS = ("onyx", "v880z", "centrino", "xeon", "athlon")
#: the host carrying the data service (the dual-Xeon desktop)
DATA_HOST = "xeon"
#: the wireless thin-client host
PDA_HOST = "zaurus"


@dataclass
class Testbed:
    """The assembled environment."""

    network: Network
    registry: UddiRegistry
    containers: dict[str, ServiceContainer]
    data_service: DataService
    render_services: dict[str, RenderService]
    wireless: WirelessCell
    business_key: str = ""
    #: the monitoring plane (None unless built with ``monitor_host=``)
    monitor: MonitorService | None = None
    #: the batch frame queue (None unless built with ``farm=True``)
    farm_queue: object | None = None
    #: autoscaler construction parameters (None unless built with
    #: ``autoscale=``); consumed by :meth:`autoscale_session`
    autoscale_config: dict | None = None
    _clients: list = field(default_factory=list)

    @property
    def clock(self):
        return self.network.sim.clock

    def render_service(self, host: str) -> RenderService:
        try:
            return self.render_services[host]
        except KeyError:
            raise ServiceError(
                f"no render service on {host!r}; render hosts: "
                f"{sorted(self.render_services)}") from None

    def publish_model(self, session_id: str, mesh: Mesh,
                      charge_time: bool = False) -> DataSession:
        """Import a mesh into the data service as a new session."""
        tree = SceneTree(name=session_id)
        tree.add(MeshNode(mesh))
        return self.data_service.create_session(session_id, tree,
                                                charge_time=charge_time)

    def publish_tree(self, session_id: str, tree: SceneTree,
                     charge_time: bool = False) -> DataSession:
        return self.data_service.create_session(session_id, tree,
                                                charge_time=charge_time)

    def thin_client(self, name: str, host: str = PDA_HOST,
                    blit_path: str = "cpp") -> ThinClient:
        client = ThinClient(name, host, self.network, blit_path=blit_path)
        self._clients.append(client)
        return client

    def active_client(self, name: str, host: str) -> ActiveRenderClient:
        client = ActiveRenderClient(name, host, self.network,
                                    PROFILES[host])
        self._clients.append(client)
        return client

    def uddi_client(self, from_host: str) -> UddiClient:
        profile = PROFILES.get(from_host)
        return UddiClient(self.registry, self.network, from_host,
                          "registry-host",
                          cpu_factor=profile.cpu_factor if profile else 1.0)

    def recruiter(self, from_host: str | None = None,
                  exclude_hosts: tuple[str, ...] = ()) -> Recruiter:
        """A recruiter resolving the registry's render-service endpoints."""
        directory = {
            service.endpoint: service
            for host, service in self.render_services.items()
            if host not in exclude_hosts
        }
        return Recruiter(self.uddi_client(from_host or DATA_HOST), directory)

    def session_grid(self, member_hosts: tuple[str, ...] | None = None,
                     tenants=(), recruit: bool = True, **kwargs):
        """Build a :class:`~repro.core.grid.SessionGridManager` here.

        ``member_hosts`` — initial pool members (default: every render
        host); hosts left out stay registered with UDDI as growth
        headroom for :meth:`SessionGridManager.grow`.  ``tenants`` —
        :class:`~repro.core.grid.TenantQuota` objects to register up
        front.  With a monitoring plane built, the grid's telemetry is
        watched immediately so the ``grid-saturated`` rules see it.
        """
        from repro.core.grid import SessionGridManager

        hosts = tuple(member_hosts if member_hosts is not None
                      else sorted(self.render_services))
        members = [self.render_service(h) for h in hosts]
        grid = SessionGridManager(
            self.data_service, members=members,
            recruiter=self.recruiter() if recruit else None, **kwargs)
        for quota in tenants:
            grid.register_tenant(quota)
        if self.monitor is not None:
            self.monitor.watch(grid)
        return grid

    def autoscale_grid(self, grid, **overrides):
        """Attach a started fleet-mode autoscaler to a session grid."""
        from repro.core.autoscale import RecruitmentAutoscaler

        if self.monitor is None:
            raise ServiceError(
                "autoscaling needs the monitoring plane; build the "
                "testbed with monitor_host=")
        config = dict(self.autoscale_config or {})
        config.update(overrides)
        autoscaler = RecruitmentAutoscaler(None, self.monitor, grid=grid,
                                           **config)
        autoscaler.start()
        return autoscaler

    def render_farm(self, worker_hosts: tuple[str, ...] | None = None,
                    recruit: bool = True, **kwargs):
        """Build a :class:`~repro.farm.controller.RenderFarmController`.

        ``worker_hosts`` — initial farm workers (default: every render
        host); hosts left out stay registered with UDDI as growth
        headroom for :meth:`RenderFarmController.grow`.  Requires the
        testbed to be built with ``farm=True`` so the frame queue
        exists.  The controller is returned un-started: call
        :meth:`~repro.farm.controller.RenderFarmController.start` once
        jobs are submitted.
        """
        from repro.farm.controller import RenderFarmController

        if self.farm_queue is None:
            raise ServiceError(
                "no frame queue; build the testbed with farm=True")
        hosts = tuple(worker_hosts if worker_hosts is not None
                      else sorted(self.render_services))
        workers = [self.render_service(h) for h in hosts]
        return RenderFarmController(
            self.farm_queue, self.data_service, workers=workers,
            recruiter=self.recruiter() if recruit else None, **kwargs)

    def autoscale_farm(self, farm, **overrides):
        """Attach a started farm-mode autoscaler to a render farm."""
        from repro.core.autoscale import RecruitmentAutoscaler

        if self.monitor is None:
            raise ServiceError(
                "autoscaling needs the monitoring plane; build the "
                "testbed with monitor_host=")
        config = dict(self.autoscale_config or {})
        config.update(overrides)
        autoscaler = RecruitmentAutoscaler(None, self.monitor, farm=farm,
                                           **config)
        autoscaler.start()
        return autoscaler

    def autoscale_session(self, session, **overrides):
        """Attach a started :class:`RecruitmentAutoscaler` to a session.

        Uses the parameters captured by ``build_testbed(autoscale=...)``
        (overridable per call) and the testbed's monitor.  The returned
        autoscaler is already ticking on the simulated clock.
        """
        from repro.core.autoscale import RecruitmentAutoscaler

        if self.monitor is None:
            raise ServiceError(
                "autoscaling needs the monitoring plane; build the "
                "testbed with monitor_host=")
        config = dict(self.autoscale_config or {})
        config.update(overrides)
        autoscaler = RecruitmentAutoscaler(session, self.monitor, **config)
        autoscaler.start()
        return autoscaler


def build_testbed(render_hosts: tuple[str, ...] = RENDER_HOSTS,
                  data_host: str = DATA_HOST,
                  pda_signal_quality: float = 1.0,
                  register_uddi: bool = True,
                  monitor_host: str | None = None,
                  monitor_period: float = 1.0,
                  autoscale: bool | dict = False,
                  farm: bool | dict = False,
                  farm_host: str | None = None) -> Testbed:
    """Assemble the §4.4 testbed.  See module docstring.

    ``monitor_host`` — deploy a :class:`MonitorService` there (e.g.
    ``"registry-host"``), watching the data service, every render service
    and the UDDI registry, with its recurring scrape already started.
    ``None`` (the default) builds the plain testbed with no monitoring
    plane — behaviour is bit-identical to earlier seeds.

    ``autoscale`` — capture recruitment-autoscaler parameters for
    :meth:`Testbed.autoscale_session` (``True`` for the defaults, or a
    dict of :class:`~repro.core.autoscale.RecruitmentAutoscaler` keyword
    arguments such as ``{"cooldown_seconds": 5.0}``).  Requires
    ``monitor_host``; sessions opt in by calling ``autoscale_session``.

    ``farm`` — deploy a :class:`~repro.farm.queue_service.FrameQueueService`
    (``rave-farm-queue``) on ``farm_host`` (default: the data host),
    register its ``RaveFrameQueueService`` tmodel + service in UDDI, and
    watch it from the monitoring plane when one is built.
    :meth:`Testbed.render_farm` then assembles the worker pool around it.
    Pass a dict instead of ``True`` to configure the queue: any
    :class:`FrameQueueService` keyword argument (``lease_timeout``,
    ``starvation_after``, ...) plus ``tenants``, a list of
    :class:`~repro.core.grid.TenantQuota` objects registered up front
    so the scheduler's per-tenant lease caps apply from the first lease.
    """
    network = Network()
    for name in set(render_hosts) | {data_host}:
        if name not in PROFILES:
            raise ServiceError(f"unknown machine {name!r}")
        network.add_host(name, profile=name)
    if PDA_HOST not in network.hosts:
        network.add_host(PDA_HOST, profile=PDA_HOST)
    network.add_host("registry-host")

    wired = sorted((set(render_hosts) | {data_host, "registry-host"}))
    network.add_ethernet_segment(wired, "switch", bandwidth_bps=100e6)
    wireless = WirelessCell(network, "switch")
    wireless.join(PDA_HOST, signal_quality=pda_signal_quality)

    containers = {
        host: ServiceContainer(host, network)
        for host in set(render_hosts) | {data_host}
    }
    data_service = DataService("rave-data", containers[data_host])
    render_services = {}
    for host in render_hosts:
        container = containers[host]
        if container is containers[data_host] and host == data_host:
            pass  # data + render share the container on the data host
        render_services[host] = RenderService(f"rs-{host}", container)

    registry = UddiRegistry("wesc-uddi")
    business_key = ""
    if register_uddi:
        business = registry.register_business(
            RAVE_BUSINESS, "Resource-Aware Visualization Environment")
        business_key = business.business_key
        data_tm = registry.register_tmodel(DATA_TMODEL, DATA_SERVICE_WSDL)
        render_tm = registry.register_tmodel(RENDER_TMODEL,
                                             RENDER_SERVICE_WSDL)
        registry.register_service(
            business.business_key, f"RaveDataService@{data_host}",
            AccessPoint(url=data_service.endpoint, host=data_host),
            [data_tm])
        for host, service in render_services.items():
            registry.register_service(
                business.business_key, f"RaveRenderService@{host}",
                AccessPoint(url=service.endpoint, host=host),
                [render_tm])

    if autoscale and monitor_host is None:
        raise ServiceError("autoscale= needs a monitoring plane; pass "
                           "monitor_host= as well")

    monitor = None
    if monitor_host is not None:
        if monitor_host not in network.hosts:
            raise ServiceError(f"unknown monitor host {monitor_host!r}")
        container = containers.get(monitor_host)
        if container is None:
            container = ServiceContainer(monitor_host, network)
            containers[monitor_host] = container
        monitor = MonitorService("rave-monitor", container,
                                 period=monitor_period)
        if register_uddi:
            monitor_tm = registry.register_tmodel(MONITOR_TMODEL,
                                                  MONITOR_SERVICE_WSDL)
            registry.register_service(
                business_key, f"RaveMonitorService@{monitor_host}",
                AccessPoint(url=monitor.endpoint, host=monitor_host),
                [monitor_tm])
        monitor.watch(data_service)
        for service in render_services.values():
            monitor.watch(service)
        monitor.watch(registry)
        monitor.start()

    farm_queue = None
    if farm:
        from repro.farm.queue_service import FrameQueueService

        farm_config = dict(farm) if isinstance(farm, dict) else {}
        farm_tenants = farm_config.pop("tenants", ())
        queue_host = farm_host if farm_host is not None else data_host
        if queue_host not in network.hosts:
            raise ServiceError(f"unknown farm host {queue_host!r}")
        container = containers.get(queue_host)
        if container is None:
            container = ServiceContainer(queue_host, network)
            containers[queue_host] = container
        farm_queue = FrameQueueService("rave-farm-queue", container,
                                       **farm_config)
        for quota in farm_tenants:
            farm_queue.register_tenant(quota)
        if register_uddi:
            farm_tm = registry.register_tmodel(FARM_TMODEL,
                                               FRAME_QUEUE_WSDL)
            registry.register_service(
                business_key, f"RaveFrameQueueService@{queue_host}",
                AccessPoint(url=farm_queue.endpoint, host=queue_host),
                [farm_tm])
        if monitor is not None:
            monitor.watch(farm_queue)

    autoscale_config = None
    if autoscale:
        autoscale_config = dict(autoscale) if isinstance(autoscale, dict) \
            else {}

    return Testbed(network=network, registry=registry,
                   containers=containers, data_service=data_service,
                   render_services=render_services, wireless=wireless,
                   business_key=business_key, monitor=monitor,
                   farm_queue=farm_queue,
                   autoscale_config=autoscale_config)
