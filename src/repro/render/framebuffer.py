"""Frame and depth buffers, and the tiling used by framebuffer distribution.

A :class:`FrameBuffer` is exactly what RAVE services exchange: an RGB byte
image plus a float depth buffer ("sends the resulting frame (and depth)
buffer").  :class:`Tile` describes a rectangular region for tiled
distribution; :func:`split_tiles` produces the grid a render service divides
its target framebuffer into.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RenderError

#: depth value meaning "nothing rendered here"
EMPTY_DEPTH = np.float32(np.inf)


@dataclass(frozen=True)
class Tile:
    """A rectangle [x0, x0+width) x [y0, y0+height) in pixel coordinates."""

    x0: int
    y0: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise RenderError(f"degenerate tile {self!r}")
        if self.x0 < 0 or self.y0 < 0:
            raise RenderError(f"negative tile origin {self!r}")

    @property
    def pixels(self) -> int:
        return self.width * self.height

    @property
    def slices(self) -> tuple[slice, slice]:
        """(row slice, column slice) for indexing image arrays."""
        return (slice(self.y0, self.y0 + self.height),
                slice(self.x0, self.x0 + self.width))

    def contains(self, x: int, y: int) -> bool:
        return (self.x0 <= x < self.x0 + self.width
                and self.y0 <= y < self.y0 + self.height)


class FrameBuffer:
    """RGB color + float32 depth, image convention (row 0 at the top)."""

    __slots__ = ("color", "depth")

    def __init__(self, width: int, height: int,
                 background=(0, 0, 0)) -> None:
        if width <= 0 or height <= 0:
            raise RenderError(f"bad framebuffer size {width}x{height}")
        self.color = np.empty((height, width, 3), dtype=np.uint8)
        self.depth = np.empty((height, width), dtype=np.float32)
        self.clear(background)

    @property
    def width(self) -> int:
        return self.color.shape[1]

    @property
    def height(self) -> int:
        return self.color.shape[0]

    @property
    def pixels(self) -> int:
        return self.width * self.height

    @property
    def nbytes_color(self) -> int:
        """Wire size of the raw RGB payload (the 120 kB of a 200x200 frame)."""
        return self.color.nbytes

    @property
    def nbytes_with_depth(self) -> int:
        """Wire size when the depth buffer rides along (tile assistance)."""
        return self.color.nbytes + self.depth.nbytes

    def clear(self, background=(0, 0, 0)) -> None:
        self.color[:] = np.asarray(background, dtype=np.uint8)
        self.depth[:] = EMPTY_DEPTH

    def copy(self) -> FrameBuffer:
        out = FrameBuffer(self.width, self.height)
        out.color[:] = self.color
        out.depth[:] = self.depth
        return out

    def coverage(self) -> float:
        """Fraction of pixels something was rendered into."""
        return float(np.isfinite(self.depth).mean())

    def extract(self, tile: Tile) -> FrameBuffer:
        """Copy out a tile-sized sub-framebuffer."""
        if (tile.x0 + tile.width > self.width
                or tile.y0 + tile.height > self.height):
            raise RenderError(f"{tile!r} exceeds {self.width}x{self.height}")
        out = FrameBuffer(tile.width, tile.height)
        rows, cols = tile.slices
        out.color[:] = self.color[rows, cols]
        out.depth[:] = self.depth[rows, cols]
        return out

    def paste(self, tile: Tile, src: FrameBuffer) -> None:
        """Overwrite a tile region with another framebuffer's content."""
        if (src.width, src.height) != (tile.width, tile.height):
            raise RenderError(
                f"tile {tile.width}x{tile.height} != src "
                f"{src.width}x{src.height}")
        rows, cols = tile.slices
        self.color[rows, cols] = src.color
        self.depth[rows, cols] = src.depth

    def mean_abs_diff(self, other: FrameBuffer) -> float:
        """Mean absolute per-channel color difference (tearing metric input)."""
        if (self.width, self.height) != (other.width, other.height):
            raise RenderError("framebuffer sizes differ")
        return float(np.abs(self.color.astype(np.int16)
                            - other.color.astype(np.int16)).mean())

    # -- export -------------------------------------------------------------------

    def to_ppm(self) -> bytes:
        """Binary PPM (P6) for figure output — viewable anywhere."""
        header = f"P6\n{self.width} {self.height}\n255\n".encode("ascii")
        return header + self.color.tobytes()

    def save_ppm(self, path) -> int:
        from pathlib import Path

        data = self.to_ppm()
        Path(path).write_bytes(data)
        return len(data)


def split_tiles(width: int, height: int, nx: int, ny: int) -> list[Tile]:
    """Divide a width x height target into an ``nx`` x ``ny`` tile grid.

    Remainder pixels go to the last row/column, so the tiles exactly cover
    the framebuffer (the compositor asserts this).
    """
    if nx <= 0 or ny <= 0:
        raise RenderError("tile grid must be at least 1x1")
    if nx > width or ny > height:
        raise RenderError(f"more tiles than pixels: {nx}x{ny} over "
                          f"{width}x{height}")
    xs = np.linspace(0, width, nx + 1).astype(int)
    ys = np.linspace(0, height, ny + 1).astype(int)
    return [
        Tile(x0=int(xs[i]), y0=int(ys[j]),
             width=int(xs[i + 1] - xs[i]), height=int(ys[j + 1] - ys[j]))
        for j in range(ny) for i in range(nx)
    ]
