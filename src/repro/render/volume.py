"""Volume ray-marching (emission-absorption), with slab support.

Implements the Visapult-style distributed volume rendering the paper's
future work adopts: a :class:`~repro.data.volumes.VoxelVolume` (or one of
its slabs) renders to an RGBA image + a representative depth, and slabs
rendered on different services blend back-to-front by their distance from
the viewer (:func:`repro.render.compositor.blend_slabs`).

Rays are generated for every pixel at once; marching is a fixed-step loop
whose body is fully vectorized (one trilinear interpolation per step over
all rays via ``scipy.ndimage.map_coordinates``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.data.volumes import VoxelVolume
from repro.errors import RenderError
from repro.render.camera import Camera


@dataclass
class VolumeImage:
    """RGBA float image + alpha-weighted depth, the slab-blending unit."""

    rgba: np.ndarray          # (h, w, 4) float32, premultiplied alpha
    depth: np.ndarray         # (h, w) float32, mean contribution distance
    #: distance from the camera to the slab centroid (the blending key)
    view_distance: float

    @property
    def coverage(self) -> float:
        return float((self.rgba[..., 3] > 1e-3).mean())


#: simple grayscale-to-warm transfer function
def default_transfer(density: np.ndarray, opacity_scale: float
                     ) -> tuple[np.ndarray, np.ndarray]:
    """density → (rgb emission (n,3), alpha (n,))"""
    d = np.clip(density, 0.0, 1.0)
    alpha = np.clip(d * opacity_scale, 0.0, 1.0)
    rgb = np.stack([
        np.clip(0.4 + 0.8 * d, 0, 1),
        np.clip(0.3 + 0.7 * d, 0, 1),
        np.clip(0.25 + 0.5 * d, 0, 1),
    ], axis=-1)
    return rgb, alpha


def raymarch_volume(volume: VoxelVolume, camera: Camera, width: int,
                    height: int, n_steps: int = 64,
                    opacity_scale: float = 0.08,
                    density_floor: float = 0.02) -> VolumeImage:
    """Front-to-back emission-absorption ray-march of a volume.

    Returns premultiplied RGBA so slabs blend with the standard *over*
    operator.  ``density_floor`` skips empty space (no emission below it).
    """
    if n_steps < 2:
        raise RenderError("n_steps must be >= 2")
    h, w_pix = height, width
    # Ray directions through each pixel center (same math as picking).
    fwd = camera.target - camera.position
    fwd = fwd / np.linalg.norm(fwd)
    upn = camera.up / np.linalg.norm(camera.up)
    if abs(float(fwd @ upn)) > 0.999:
        upn = (np.array([1.0, 0.0, 0.0])
               if abs(fwd[0]) < 0.9 else np.array([0.0, 1.0, 0.0]))
    right = np.cross(fwd, upn)
    right /= np.linalg.norm(right)
    true_up = np.cross(right, fwd)
    aspect = w_pix / h
    tan_half = np.tan(np.radians(camera.fov_degrees) / 2.0)
    xs = (2.0 * (np.arange(w_pix) + 0.5) / w_pix - 1.0) * tan_half * aspect
    ys = (1.0 - 2.0 * (np.arange(h) + 0.5) / h) * tan_half
    dirs = (fwd[None, None, :]
            + xs[None, :, None] * right[None, None, :]
            + ys[:, None, None] * true_up[None, None, :])
    dirs /= np.linalg.norm(dirs, axis=-1, keepdims=True)

    # Slab entry/exit: intersect rays with the volume's AABB.
    origin = np.asarray(volume.origin)
    spacing = np.asarray(volume.spacing)
    vmax = origin + spacing * (np.asarray(volume.shape) - 1)
    eye = camera.position
    with np.errstate(divide="ignore", invalid="ignore"):
        inv_d = 1.0 / dirs
        t0 = (origin[None, None, :] - eye[None, None, :]) * inv_d
        t1 = (vmax[None, None, :] - eye[None, None, :]) * inv_d
    lo = np.minimum(t0, t1)
    hi = np.maximum(t0, t1)
    # NaN = ray parallel to a slab while starting on its plane: that axis
    # imposes no constraint, so its interval is (-inf, inf).
    lo = np.where(np.isnan(lo), -np.inf, lo)
    hi = np.where(np.isnan(hi), np.inf, hi)
    t_near = lo.max(axis=-1)
    t_far = hi.min(axis=-1)
    t_near = np.maximum(t_near, camera.near)
    hit = t_far > t_near

    rgba = np.zeros((h, w_pix, 4), dtype=np.float32)
    depth_sum = np.zeros((h, w_pix), dtype=np.float64)
    alpha_sum = np.zeros((h, w_pix), dtype=np.float64)
    if hit.any():
        hy, hx = np.nonzero(hit)
        d = dirs[hy, hx]                          # (r, 3)
        tn = t_near[hy, hx]
        tf = t_far[hy, hx]
        dt = (tf - tn) / n_steps
        acc_rgb = np.zeros((len(hy), 3), dtype=np.float64)
        acc_a = np.zeros(len(hy), dtype=np.float64)
        for step in range(n_steps):
            t = tn + (step + 0.5) * dt
            pos = eye[None, :] + t[:, None] * d
            coords = ((pos - origin[None, :]) / spacing[None, :]).T
            density = ndimage.map_coordinates(
                volume.values, coords, order=1, mode="constant", cval=0.0)
            emit = density > density_floor
            if emit.any():
                rgb, alpha = default_transfer(density, opacity_scale)
                # opacity correction for the step length
                a_step = 1.0 - np.power(1.0 - alpha, dt * n_steps / 2.0)
                a_step = np.where(emit, a_step, 0.0)
                weight = (1.0 - acc_a) * a_step
                acc_rgb += weight[:, None] * rgb
                acc_a += weight
                depth_sum[hy, hx] += weight * t
                alpha_sum[hy, hx] += weight
            if (acc_a > 0.995).all():
                break
        rgba[hy, hx, :3] = acc_rgb
        rgba[hy, hx, 3] = acc_a

    depth = np.where(alpha_sum > 1e-9, depth_sum / np.maximum(alpha_sum, 1e-9),
                     np.inf).astype(np.float32)
    centroid = origin + 0.5 * spacing * (np.asarray(volume.shape) - 1)
    view_distance = float(np.linalg.norm(centroid - eye))
    return VolumeImage(rgba=rgba, depth=depth, view_distance=view_distance)
