"""Z-buffered triangle rasterization, vectorized over triangle batches.

Strategy (per the HPC guides: vectorize the inner loops, mind memory):

1. project every vertex once (one matrix multiply for the whole mesh);
2. cull faces behind the near plane, zero-area faces, and (optionally)
   backfaces;
3. bucket the survivors by bounding-box size (4, 8, 16, ... pixels), then
   for each bucket evaluate barycentric coordinates for *all faces of the
   bucket at once* on a shared ``B x B`` offset grid — a single broadcast
   of shape ``(faces, B*B)``;
4. depth-test with a two-pass scatter: ``np.minimum.at`` builds the winning
   depth per pixel, then fragments equal to the winner write color.

Fragment chunks are capped (``max_fragments``) so peak memory stays bounded
regardless of triangle count.  Perspective-correct depth uses the linear
interpolation of ``1/w`` in screen space.

Near-plane behaviour: faces with any vertex closer than ``camera.near`` are
*dropped*, not clipped — the standard simplification for a z-buffer
renderer whose cameras orbit outside the model (every paper scenario).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.meshes import Mesh
from repro.errors import RenderError
from repro.render.camera import Camera
from repro.render.framebuffer import FrameBuffer
from repro.render.shading import flat_intensity, gouraud_intensity

#: bounding-box size buckets (pixels); boxes above the last bucket are
#: rendered in per-face slices (rare close-up geometry)
_BUCKETS = (4, 8, 16, 32, 64, 128, 256, 512)


@dataclass(frozen=True)
class RasterStats:
    """What one rasterization pass did — feeds the engine's timing model."""

    faces_in: int
    faces_culled_near: int
    faces_culled_backface: int
    faces_culled_offscreen: int
    faces_rasterized: int
    fragments: int

    @property
    def visible_fraction(self) -> float:
        return self.faces_rasterized / self.faces_in if self.faces_in else 0.0


def _face_colors(mesh: Mesh, base_color, shading: str, light_direction
                 ) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Returns (per-face RGB float, per-vertex RGB float); one is None."""
    base = np.asarray(base_color, dtype=np.float64)
    if base.shape != (3,):
        raise RenderError(f"base_color must be RGB; got {base!r}")
    if shading == "flat":
        intensity = flat_intensity(mesh, light_direction)
        if mesh.colors is not None:
            rgb = mesh.colors[mesh.faces].mean(axis=1) * 255.0
        else:
            rgb = base[None, :]
        return intensity[:, None] * rgb, None
    if shading == "gouraud":
        intensity = gouraud_intensity(mesh, light_direction)
        if mesh.colors is not None:
            rgb = mesh.colors.astype(np.float64) * 255.0
        else:
            rgb = np.broadcast_to(base, (mesh.n_vertices, 3))
        return None, intensity[:, None] * rgb
    if shading == "none":
        if mesh.colors is not None:
            return mesh.colors[mesh.faces].mean(axis=1) * 255.0, None
        return np.broadcast_to(base, (mesh.n_triangles, 3)).copy(), None
    raise RenderError(f"unknown shading mode {shading!r}")


def rasterize_mesh(mesh: Mesh, camera: Camera, fb: FrameBuffer,
                   base_color=(200, 200, 210), shading: str = "flat",
                   light_direction=None, cull_backfaces: bool = False,
                   max_fragments: int = 4_000_000) -> RasterStats:
    """Rasterize a mesh into ``fb`` (accumulating against its z-buffer)."""
    n_in = mesh.n_triangles
    if n_in == 0:
        return RasterStats(0, 0, 0, 0, 0, 0)

    width, height = fb.width, fb.height
    screen, w = camera.project_vertices(mesh.vertices, width, height)

    faces = mesh.faces
    p0 = screen[faces[:, 0]]
    p1 = screen[faces[:, 1]]
    p2 = screen[faces[:, 2]]
    w0v = w[faces[:, 0]]
    w1v = w[faces[:, 1]]
    w2v = w[faces[:, 2]]

    # -- cull: near plane ------------------------------------------------------
    in_front = ((w0v > camera.near) & (w1v > camera.near)
                & (w2v > camera.near))
    n_near = int((~in_front).sum())

    # -- cull: degenerate / backface --------------------------------------------
    area = ((p1[:, 0] - p0[:, 0]) * (p2[:, 1] - p0[:, 1])
            - (p1[:, 1] - p0[:, 1]) * (p2[:, 0] - p0[:, 0]))
    if cull_backfaces:
        facing = area < -1e-12  # CCW in y-down screen space
    else:
        facing = np.abs(area) > 1e-12
    n_back = int((in_front & ~facing).sum())
    keep = in_front & facing

    # -- cull: off-screen bounding boxes -----------------------------------------
    bx0 = np.floor(np.minimum(np.minimum(p0[:, 0], p1[:, 0]), p2[:, 0]))
    bx1 = np.ceil(np.maximum(np.maximum(p0[:, 0], p1[:, 0]), p2[:, 0]))
    by0 = np.floor(np.minimum(np.minimum(p0[:, 1], p1[:, 1]), p2[:, 1]))
    by1 = np.ceil(np.maximum(np.maximum(p0[:, 1], p1[:, 1]), p2[:, 1]))
    on_screen = (bx1 >= 0) & (bx0 < width) & (by1 >= 0) & (by0 < height)
    n_off = int((keep & ~on_screen).sum())
    keep &= on_screen
    idx = np.nonzero(keep)[0]
    if not len(idx):
        return RasterStats(n_in, n_near, n_back, n_off, 0, 0)

    # clamp boxes to the framebuffer
    bx0 = np.clip(bx0[idx], 0, width - 1).astype(np.int64)
    by0 = np.clip(by0[idx], 0, height - 1).astype(np.int64)
    bx1 = np.clip(bx1[idx], 0, width - 1).astype(np.int64)
    by1 = np.clip(by1[idx], 0, height - 1).astype(np.int64)
    bw = bx1 - bx0 + 1
    bh = by1 - by0 + 1
    bmax = np.maximum(bw, bh)

    textured = mesh.texture is not None and mesh.uv is not None
    if textured:
        # texture modulated by Gouraud intensity; uv interpolated like
        # vertex colors (screen-space barycentric, same approximation)
        face_rgb = None
        vert_rgb = None
        vert_uv = mesh.uv.astype(np.float64)
        vert_intensity = gouraud_intensity(mesh, light_direction)
        texture = mesh.texture
    else:
        face_rgb, vert_rgb = _face_colors(mesh, base_color, shading,
                                          light_direction)
        vert_uv = None
        vert_intensity = None
        texture = None
    if face_rgb is not None:
        face_rgb = face_rgb[idx]  # align with the surviving-face index space

    depth_flat = fb.depth.reshape(-1)
    color_flat = fb.color.reshape(-1, 3)
    inv_w = 1.0 / np.stack([w0v[idx], w1v[idx], w2v[idx]], axis=1)
    corners = np.stack([p0[idx], p1[idx], p2[idx]], axis=1)  # (k, 3, 3)
    area_k = area[idx]
    total_fragments = 0

    def _raster_block(sel: np.ndarray, B: int) -> int:
        """Rasterize faces ``sel`` (indices into idx-space) on a BxB grid."""
        k = len(sel)
        if k == 0:
            return 0
        ox = np.arange(B)
        oy = np.arange(B)
        # pixel centers: (k, B) each axis
        px = bx0[sel][:, None] + ox[None, :]
        py = by0[sel][:, None] + oy[None, :]
        cx = px + 0.5
        cy = py + 0.5
        c = corners[sel]                                  # (k, 3, 3)
        x0, y0 = c[:, 0, 0], c[:, 0, 1]
        x1, y1 = c[:, 1, 0], c[:, 1, 1]
        x2, y2 = c[:, 2, 0], c[:, 2, 1]
        a = area_k[sel]
        inv_a = 1.0 / a
        # edge functions on the (k, B, B) grid via broadcasting
        CX = cx[:, None, :]                               # (k, 1, B)
        CY = cy[:, :, None]                               # (k, B, 1)
        l0 = ((x1 - x0)[:, None, None] * (CY - y0[:, None, None])
              - (y1 - y0)[:, None, None] * (CX - x0[:, None, None]))
        l1 = ((x2 - x1)[:, None, None] * (CY - y1[:, None, None])
              - (y2 - y1)[:, None, None] * (CX - x1[:, None, None]))
        l2 = ((x0 - x2)[:, None, None] * (CY - y2[:, None, None])
              - (y0 - y2)[:, None, None] * (CX - x2[:, None, None]))
        # normalized barycentric (l1 is opposite vertex 0, etc.)
        b0 = l1 * inv_a[:, None, None]
        b1 = l2 * inv_a[:, None, None]
        b2 = l0 * inv_a[:, None, None]
        inside = (b0 >= 0) & (b1 >= 0) & (b2 >= 0)
        # stay inside both the per-face bbox and the framebuffer
        inside &= (px[:, None, :] <= bx1[sel][:, None, None])
        inside &= (py[:, :, None] <= by1[sel][:, None, None])
        inside &= (px[:, None, :] < width) & (py[:, :, None] < height)
        if not inside.any():
            return 0
        # perspective-correct depth: interpolate 1/w linearly
        iw = inv_w[sel]                                   # (k, 3)
        inv_depth = (b0 * iw[:, 0, None, None]
                     + b1 * iw[:, 1, None, None]
                     + b2 * iw[:, 2, None, None])
        face_of = np.broadcast_to(
            np.arange(k)[:, None, None], inside.shape)[inside]
        flat_pix = (py[:, :, None] * width
                    + px[:, None, :] * np.ones((k, B, 1), dtype=np.int64))
        pix = flat_pix[inside]
        z = (1.0 / inv_depth[inside]).astype(np.float32)
        # pass 1: winning depth per pixel
        np.minimum.at(depth_flat, pix, z)
        # pass 2: fragments that won write color
        winners = depth_flat[pix] == z
        pix_w = pix[winners]
        if textured:
            vu = vert_uv[faces[idx[sel]]]                 # (k, 3, 2)
            vi = vert_intensity[faces[idx[sel]]]          # (k, 3)
            bb0 = b0[inside][winners]
            bb1 = b1[inside][winners]
            bb2 = b2[inside][winners]
            fw = face_of[winners]
            u = (bb0 * vu[fw, 0, 0] + bb1 * vu[fw, 1, 0]
                 + bb2 * vu[fw, 2, 0])
            v_coord = (bb0 * vu[fw, 0, 1] + bb1 * vu[fw, 1, 1]
                       + bb2 * vu[fw, 2, 1])
            intensity = (bb0 * vi[fw, 0] + bb1 * vi[fw, 1]
                         + bb2 * vi[fw, 2])
            rgb = texture.sample(u % 1.0, v_coord % 1.0) \
                * intensity[:, None]
        elif vert_rgb is None:
            rgb = face_rgb[sel][face_of[winners]]
        else:
            vr = vert_rgb[faces[idx[sel]]]                # (k, 3, 3)
            bb0 = b0[inside][winners]
            bb1 = b1[inside][winners]
            bb2 = b2[inside][winners]
            fw = face_of[winners]
            rgb = (bb0[:, None] * vr[fw, 0]
                   + bb1[:, None] * vr[fw, 1]
                   + bb2[:, None] * vr[fw, 2])
        color_flat[pix_w] = np.clip(rgb, 0.0, 255.0).astype(np.uint8)
        return int(inside.sum())

    order = np.argsort(bmax, kind="stable")
    pos = 0
    for B in _BUCKETS:
        hi = int(np.searchsorted(bmax[order], B, side="right"))
        block = order[pos:pos + (hi - pos)]
        pos = hi
        if not len(block):
            continue
        chunk = max(1, max_fragments // (B * B))
        for start in range(0, len(block), chunk):
            total_fragments += _raster_block(block[start:start + chunk], B)
    # oversized boxes: per-face full-bbox pass
    for sel in order[pos:]:
        B = int(bmax[sel])
        total_fragments += _raster_block(np.array([sel]), B)

    return RasterStats(
        faces_in=n_in,
        faces_culled_near=n_near,
        faces_culled_backface=n_back,
        faces_culled_offscreen=n_off,
        faces_rasterized=len(idx),
        fragments=total_fragments,
    )
