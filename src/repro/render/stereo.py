"""Stereo rendering for immersive displays.

The paper's testbed drives "large-scale stereo, tracked displays" — an
Immersadesk R2 and a FakeSpace Portico Workwall ("rear-projection active
stereo").  A stereo frame is two renders from eye positions offset along
the camera's right axis; active-stereo hardware alternates them, and for
file output we also provide a red/cyan anaglyph composite.

Head tracking enters as ``head_offset``: the tracked user's head position
relative to the screen center shifts both eyes (the paper's "tracked"
qualifier) so the perspective follows the viewer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RenderError
from repro.render.camera import Camera
from repro.render.framebuffer import FrameBuffer

#: human interpupillary distance in scene units (meters-scaled scenes)
DEFAULT_EYE_SEPARATION = 0.065


@dataclass
class StereoPair:
    """Left/right eye framebuffers plus the geometry that produced them."""

    left: FrameBuffer
    right: FrameBuffer
    eye_separation: float

    @property
    def width(self) -> int:
        return self.left.width

    @property
    def height(self) -> int:
        return self.left.height

    def anaglyph(self) -> FrameBuffer:
        """Red/cyan composite (left eye = red channel, right = green+blue)."""
        out = FrameBuffer(self.width, self.height)
        out.color[..., 0] = self.left.color.mean(axis=2).astype(np.uint8)
        right_l = self.right.color.mean(axis=2).astype(np.uint8)
        out.color[..., 1] = right_l
        out.color[..., 2] = right_l
        out.depth[:] = np.minimum(self.left.depth, self.right.depth)
        return out

    def disparity_stats(self) -> tuple[float, float]:
        """(mean, max) horizontal disparity in pixels over covered pixels.

        A cheap sanity metric: nearer geometry must shift more between the
        eyes than distant geometry.
        """
        lcov = np.isfinite(self.left.depth)
        rcov = np.isfinite(self.right.depth)
        if not (lcov.any() and rcov.any()):
            return 0.0, 0.0
        # per-row covered-column centroids as a robust shift estimate
        shifts = []
        for row in range(self.height):
            lcols = np.nonzero(lcov[row])[0]
            rcols = np.nonzero(rcov[row])[0]
            if len(lcols) and len(rcols):
                shifts.append(float(lcols.mean() - rcols.mean()))
        if not shifts:
            return 0.0, 0.0
        arr = np.abs(np.asarray(shifts))
        return float(arr.mean()), float(arr.max())


def stereo_cameras(camera: Camera,
                   eye_separation: float = DEFAULT_EYE_SEPARATION,
                   head_offset=(0.0, 0.0, 0.0)) -> tuple[Camera, Camera]:
    """Left/right eye cameras from a cyclopean camera + tracked head."""
    if eye_separation <= 0:
        raise RenderError("eye separation must be positive")
    fwd = camera.target - camera.position
    norm = np.linalg.norm(fwd)
    if norm == 0:
        raise RenderError("camera position and target coincide")
    fwd = fwd / norm
    up = camera.up / np.linalg.norm(camera.up)
    if abs(float(fwd @ up)) > 0.999:
        up = (np.array([1.0, 0.0, 0.0])
              if abs(fwd[0]) < 0.9 else np.array([0.0, 1.0, 0.0]))
    right = np.cross(fwd, up)
    right /= np.linalg.norm(right)
    true_up = np.cross(right, fwd)
    head = (np.asarray(head_offset, dtype=np.float64)[0] * right
            + np.asarray(head_offset, dtype=np.float64)[1] * true_up
            + np.asarray(head_offset, dtype=np.float64)[2] * fwd)
    base = camera.position + head
    half = eye_separation / 2.0
    left = Camera(position=base - half * right, target=camera.target,
                  up=camera.up, fov_degrees=camera.fov_degrees,
                  near=camera.near, far=camera.far)
    right_cam = Camera(position=base + half * right, target=camera.target,
                       up=camera.up, fov_degrees=camera.fov_degrees,
                       near=camera.near, far=camera.far)
    return left, right_cam


def render_stereo(draw, camera: Camera, width: int, height: int,
                  eye_separation: float = DEFAULT_EYE_SEPARATION,
                  head_offset=(0.0, 0.0, 0.0),
                  background=(12, 12, 24)) -> StereoPair:
    """Render a stereo pair.

    ``draw(camera, framebuffer)`` is the scene-drawing callback (typically
    a closure over a mesh or scene tree); it runs once per eye.
    """
    left_cam, right_cam = stereo_cameras(camera, eye_separation,
                                         head_offset)
    left = FrameBuffer(width, height, background=background)
    right = FrameBuffer(width, height, background=background)
    draw(left_cam, left)
    draw(right_cam, right)
    return StereoPair(left=left, right=right,
                      eye_separation=eye_separation)
