"""The render engine: real rasterization + 2004-hardware timing model.

One object owns both halves of the substitution documented in DESIGN.md:

- images are produced by the real software rasterizer (so compositing,
  tiling and figures exercise true code paths);
- simulated frame times come from the machine profile's Java3D-era model,
  reproducing Tables 2-4:

  - on-screen:   ``T_on = setup + polys/rate + pixels/fill``
  - off-screen (hardware): ``T_on + C`` where ``C = offscreen_fixed +
    pixels * offscreen_pixel_cost`` — Java3D's render-request/completion-
    poll/copy overhead.  With ``m`` interleaved outstanding images the
    overlappable share of ``C`` divides by ``m`` ("we interleaved our
    requests ... this should overlap the rendering as much as possible").
  - off-screen (software fallback, the V880z finding): re-render at the
    software rates plus the pixel copy; only the copy overlaps when
    interleaved (a single software pipeline cannot).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.meshes import Mesh
from repro.errors import RenderError
from repro.hardware.profiles import MachineProfile
from repro.render.camera import Camera
from repro.render.framebuffer import FrameBuffer
from repro.render.rasterizer import RasterStats, rasterize_mesh


@dataclass(frozen=True)
class RenderTiming:
    """Simulated timing of one frame on the modelled machine."""

    render_seconds: float      # pure draw time (on-screen equivalent)
    overhead_seconds: float    # off-screen request/poll/copy overhead
    mode: str                  # "onscreen" | "offscreen"

    @property
    def total_seconds(self) -> float:
        return self.render_seconds + self.overhead_seconds

    @property
    def fps(self) -> float:
        return 1.0 / self.total_seconds if self.total_seconds > 0 else 0.0


class RenderEngine:
    """Per-machine rendering engine."""

    def __init__(self, profile: MachineProfile) -> None:
        if not profile.can_render:
            raise RenderError(
                f"{profile.name} has no rendering capability "
                "(thin-client only)")
        self.profile = profile

    # -- timing model -------------------------------------------------------------

    def onscreen_seconds(self, n_polygons: int, pixels: int) -> float:
        """Draw time for one on-screen frame."""
        p = self.profile
        return (p.frame_setup + n_polygons / p.polygon_rate
                + pixels / p.fill_rate)

    def offscreen_seconds(self, n_polygons: int, pixels: int,
                          interleaved: int = 1) -> float:
        """One off-screen frame, with ``interleaved`` outstanding requests."""
        if interleaved < 1:
            raise RenderError("interleaved count must be >= 1")
        p = self.profile
        if p.offscreen_mode == "none":
            raise RenderError(f"{p.name} cannot render off-screen")
        if p.offscreen_mode == "software":
            base = (p.software_frame_setup
                    + n_polygons / p.software_polygon_rate
                    + pixels / p.software_fill_rate)
            copy = pixels * p.offscreen_pixel_cost
            return base + copy / interleaved
        # hardware off-screen
        base = self.onscreen_seconds(n_polygons, pixels)
        overhead = p.offscreen_fixed + pixels * p.offscreen_pixel_cost
        serial = p.offscreen_serial_fraction
        return base + overhead * (serial + (1.0 - serial) / interleaved)

    def offscreen_efficiency(self, n_polygons: int, pixels: int,
                             interleaved: int = 1) -> float:
        """Off-screen speed as a fraction of on-screen speed (Tables 3/4)."""
        return (self.onscreen_seconds(n_polygons, pixels)
                / self.offscreen_seconds(n_polygons, pixels, interleaved))

    def timing(self, n_polygons: int, pixels: int, offscreen: bool,
               interleaved: int = 1) -> RenderTiming:
        render = self.onscreen_seconds(n_polygons, pixels)
        if not offscreen:
            return RenderTiming(render_seconds=render, overhead_seconds=0.0,
                                mode="onscreen")
        total = self.offscreen_seconds(n_polygons, pixels, interleaved)
        return RenderTiming(render_seconds=render,
                            overhead_seconds=total - render,
                            mode="offscreen")

    # -- real rendering + timing together --------------------------------------------

    def render_mesh(self, mesh: Mesh, camera: Camera, fb: FrameBuffer,
                    offscreen: bool = True, interleaved: int = 1,
                    **raster_kwargs) -> tuple[RasterStats, RenderTiming]:
        """Rasterize for real and report the modelled 2004 frame time.

        The timing uses the mesh's *total* polygon count — matching the
        paper's worst-case methodology ("the views were arranged to have
        the maximum possible number of visible polygons").
        """
        stats = rasterize_mesh(mesh, camera, fb, **raster_kwargs)
        timing = self.timing(mesh.n_triangles, fb.pixels,
                             offscreen=offscreen, interleaved=interleaved)
        return stats, timing
