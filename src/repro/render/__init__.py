"""Software rendering substrate.

The paper renders with Java3D on 2004 GPUs; we render for real with a
NumPy-vectorized software rasterizer and model the 2004 timing behaviour
separately (:mod:`repro.render.engine`).  The code path is the paper's:
scene → camera transform → rasterize (or splat / ray-march) → framebuffer
(+ depth) → tile/depth compositing → client.

- :mod:`repro.render.camera` — look-at / perspective / viewport transforms;
- :mod:`repro.render.framebuffer` — RGB+depth buffers, tiling, PPM export;
- :mod:`repro.render.rasterizer` — z-buffered triangle rasterization,
  vectorized over triangle batches (no per-pixel Python);
- :mod:`repro.render.shading` — flat and Gouraud Lambert shading;
- :mod:`repro.render.points` — point-cloud splatting;
- :mod:`repro.render.volume` — emission-absorption volume ray-marching;
- :mod:`repro.render.compositor` — depth compositing of distributed
  framebuffers, tile assembly, tearing detection, frame synchronization,
  back-to-front blending of volume slabs;
- :mod:`repro.render.engine` — the per-machine timing model reproducing
  Tables 2-4 (on-screen vs off-screen, sequential vs interleaved).
"""

from repro.render.camera import Camera
from repro.render.framebuffer import FrameBuffer, Tile, split_tiles
from repro.render.rasterizer import rasterize_mesh, RasterStats
from repro.render.shading import flat_intensity, gouraud_intensity
from repro.render.points import rasterize_points
from repro.render.volume import raymarch_volume
from repro.render.compositor import (
    FrameSynchronizer,
    assemble_tiles,
    blend_slabs,
    depth_composite,
    seam_discontinuity,
)
from repro.render.engine import RenderEngine, RenderTiming

__all__ = [
    "Camera",
    "FrameBuffer",
    "Tile",
    "split_tiles",
    "rasterize_mesh",
    "RasterStats",
    "flat_intensity",
    "gouraud_intensity",
    "rasterize_points",
    "raymarch_volume",
    "depth_composite",
    "assemble_tiles",
    "blend_slabs",
    "seam_discontinuity",
    "FrameSynchronizer",
    "RenderEngine",
    "RenderTiming",
]
