"""Point-cloud splatting.

Paper future work ("we will extend our support and rendering services to
include voxel and point based methods"), implemented: each point projects
to a square splat of ``point_size`` pixels, z-tested against the shared
depth buffer so point clouds composite correctly with meshes and volume
slabs.  Vectorized over all points; the splat footprint is a small loop
over ``size^2`` offsets, each a full-array scatter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RenderError
from repro.render.camera import Camera
from repro.render.framebuffer import FrameBuffer


@dataclass(frozen=True)
class PointStats:
    points_in: int
    points_drawn: int
    fragments: int


def rasterize_points(points: np.ndarray, camera: Camera, fb: FrameBuffer,
                     colors: np.ndarray | None = None,
                     base_color=(230, 220, 180),
                     point_size: int = 1,
                     depth_fade: bool = True) -> PointStats:
    """Splat a point cloud into ``fb``.

    ``depth_fade`` dims distant points slightly, a cheap depth cue matching
    what Java3D point rendering looked like.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise RenderError(f"points must be (n, 3); got {points.shape}")
    if point_size < 1 or point_size > 64:
        raise RenderError(f"point_size must be in [1, 64]; got {point_size}")
    n_in = len(points)
    if n_in == 0:
        return PointStats(0, 0, 0)

    width, height = fb.width, fb.height
    screen, w = camera.project_vertices(points, width, height)
    visible = (w > camera.near)
    px = np.floor(screen[:, 0]).astype(np.int64)
    py = np.floor(screen[:, 1]).astype(np.int64)
    pad = point_size  # allow partially-visible splats at the border
    visible &= (px >= -pad) & (px < width + pad)
    visible &= (py >= -pad) & (py < height + pad)
    sel = np.nonzero(visible)[0]
    if not len(sel):
        return PointStats(n_in, 0, 0)

    px = px[sel]
    py = py[sel]
    z = screen[sel, 2].astype(np.float32)

    if colors is not None:
        colors = np.asarray(colors, dtype=np.float64)
        if colors.shape != (n_in, 3):
            raise RenderError(
                f"colors must be ({n_in}, 3); got {colors.shape}")
        rgb = colors[sel] * 255.0
    else:
        rgb = np.broadcast_to(np.asarray(base_color, dtype=np.float64),
                              (len(sel), 3)).copy()
    if depth_fade:
        zmin, zmax = float(z.min()), float(z.max())
        if zmax > zmin:
            fade = 1.0 - 0.4 * (z - zmin) / (zmax - zmin)
            rgb = rgb * fade[:, None].astype(np.float64)
    rgb8 = np.clip(rgb, 0.0, 255.0).astype(np.uint8)

    depth_flat = fb.depth.reshape(-1)
    color_flat = fb.color.reshape(-1, 3)
    half = (point_size - 1) // 2
    fragments = 0
    for dy in range(point_size):
        for dx in range(point_size):
            qx = px + dx - half
            qy = py + dy - half
            ok = (qx >= 0) & (qx < width) & (qy >= 0) & (qy < height)
            if not ok.any():
                continue
            pix = qy[ok] * width + qx[ok]
            zz = z[ok]
            np.minimum.at(depth_flat, pix, zz)
            winners = depth_flat[pix] == zz
            color_flat[pix[winners]] = rgb8[ok][winners]
            fragments += int(ok.sum())
    return PointStats(points_in=n_in, points_drawn=len(sel),
                      fragments=fragments)
