"""Compositing distributed rendering results.

Three schemes from the paper:

1. **depth compositing** of whole framebuffers — scene-subset distribution:
   each render service renders its subset with the shared camera, then the
   client's service takes the nearest fragment per pixel.  "Compositing is
   currently restricted to opaque solids, as this does not require any
   specific ordering of frame buffers" — :func:`depth_composite`;
2. **tile assembly** — framebuffer distribution: each assistant renders one
   tile, the requester pastes them into the target (:func:`assemble_tiles`),
   with best-effort pasting producing the tearing of Figure 5
   (:func:`seam_discontinuity` measures it, :class:`FrameSynchronizer`
   removes it);
3. **back-to-front slab blending** for distributed volume rendering — the
   Visapult scheme the future work adopts: slabs "can be blended, even
   though they contain transparency, by considering their relative distance
   from the view in the order of blending" — :func:`blend_slabs`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RenderError
from repro.obs import active as _obs
from repro.render.framebuffer import FrameBuffer, Tile
from repro.render.volume import VolumeImage


def depth_composite(buffers: list[FrameBuffer]) -> FrameBuffer:
    """Per-pixel nearest-fragment merge of equally-sized framebuffers."""
    if not buffers:
        raise RenderError("nothing to composite")
    first = buffers[0]
    for fb in buffers[1:]:
        if (fb.width, fb.height) != (first.width, first.height):
            raise RenderError(
                f"framebuffer sizes differ: {fb.width}x{fb.height} vs "
                f"{first.width}x{first.height}")
    out = first.copy()
    for fb in buffers[1:]:
        nearer = fb.depth < out.depth
        out.depth[nearer] = fb.depth[nearer]
        out.color[nearer] = fb.color[nearer]
    return out


def assemble_tiles(target: FrameBuffer,
                   tiles: list[tuple[Tile, FrameBuffer]]) -> FrameBuffer:
    """Paste rendered tiles into the target framebuffer (best effort).

    Tiles may come from different frames — that is precisely how the
    Figure 5 tearing arises; callers wanting consistency use
    :class:`FrameSynchronizer`.
    """
    for tile, fb in tiles:
        target.paste(tile, fb)
    return target


def check_tiling(width: int, height: int, tiles: list[Tile]) -> None:
    """Assert a tile set exactly covers the target with no overlap."""
    cover = np.zeros((height, width), dtype=np.int32)
    for tile in tiles:
        rows, cols = tile.slices
        if tile.y0 + tile.height > height or tile.x0 + tile.width > width:
            raise RenderError(f"{tile!r} exceeds {width}x{height}")
        cover[rows, cols] += 1
    if (cover != 1).any():
        missing = int((cover == 0).sum())
        overlap = int((cover > 1).sum())
        raise RenderError(
            f"bad tiling: {missing} uncovered px, {overlap} overlapped px")


def seam_discontinuity(fb: FrameBuffer, tiles: list[Tile]) -> float:
    """Tearing metric: color discontinuity across tile seams vs interior.

    Returns the ratio of the mean absolute color step across tile-boundary
    pixel pairs to the mean step across all neighbouring pixel pairs.  A
    consistent frame scores ≈ 1; a torn frame (stale tile pasted next to a
    fresh one, Figure 5) scores noticeably above 1.
    """
    img = fb.color.astype(np.float64)
    # vertical seams: columns where a tile starts (x0 > 0)
    seam_cols = sorted({t.x0 for t in tiles if t.x0 > 0})
    seam_rows = sorted({t.y0 for t in tiles if t.y0 > 0})
    if not seam_cols and not seam_rows:
        return 1.0
    diffs = []
    for c in seam_cols:
        diffs.append(np.abs(img[:, c] - img[:, c - 1]).mean())
    for r in seam_rows:
        diffs.append(np.abs(img[r, :] - img[r - 1, :]).mean())
    seam = float(np.mean(diffs))
    dx = np.abs(np.diff(img, axis=1)).mean()
    dy = np.abs(np.diff(img, axis=0)).mean()
    interior = float((dx + dy) / 2.0)
    if interior < 1e-9:
        return 1.0 if seam < 1e-9 else np.inf
    return seam / interior


class FrameSynchronizer:
    """Holds tiles until a full consistent frame is available.

    The paper: "we are not using any synchronisation between frame buffers,
    local and remote simply rendering best effort ... this can result in
    visual artifacts such as tearing ... we will need to implement
    synchronisation with complex scenes."  This class is that future-work
    synchroniser: tiles are keyed by frame sequence number, and
    :meth:`take_frame` only releases a frame once every tile of that
    sequence has arrived.

    ``last_released`` is the released-sequence watermark: a tile arriving
    for a sequence at or below it belongs to a frame already shown (or
    dropped in its favour), and releasing that frame later would regress
    the display — exactly the out-of-order artifact the class exists to
    prevent.  Such late submissions are counted (``late_tiles``) and
    discarded.
    """

    def __init__(self, tiles: list[Tile]) -> None:
        if not tiles:
            raise RenderError("synchronizer needs at least one tile")
        self.tiles = list(tiles)
        self._pending: dict[int, dict[int, FrameBuffer]] = {}
        self.frames_released = 0
        self.frames_dropped = 0
        #: highest sequence ever released (the watermark); None before any
        self.last_released: int | None = None
        #: tiles discarded because their sequence was already released/dropped
        self.late_tiles = 0

    def submit(self, sequence: int, tile_index: int, fb: FrameBuffer) -> None:
        if not 0 <= tile_index < len(self.tiles):
            raise RenderError(f"tile index {tile_index} out of range")
        tile = self.tiles[tile_index]
        if (fb.width, fb.height) != (tile.width, tile.height):
            raise RenderError("tile framebuffer has wrong size")
        if self.last_released is not None and sequence <= self.last_released:
            # Late tile for a frame already superseded: re-pending it could
            # complete an old frame and release it after a newer one.
            self.late_tiles += 1
            obs = _obs()
            if obs.enabled:
                obs.metrics.counter("rave_sync_late_tiles_total",
                                    "tiles dropped at the watermark").inc()
            return
        self._pending.setdefault(sequence, {})[tile_index] = fb

    def take_frame(self, target: FrameBuffer) -> int | None:
        """Assemble the oldest complete frame into ``target``.

        Returns its sequence number, or ``None`` if no frame is complete.
        Older incomplete frames are dropped once a newer frame completes
        (a late tile must not tear a frame already shown).
        """
        complete = sorted(
            seq for seq, got in self._pending.items()
            if len(got) == len(self.tiles))
        if not complete:
            return None
        seq = complete[0]
        parts = self._pending.pop(seq)
        for idx, tile in enumerate(self.tiles):
            target.paste(tile, parts[idx])
        stale = [s for s in self._pending if s < seq]
        for s in stale:
            self._pending.pop(s)
            self.frames_dropped += 1
        self.frames_released += 1
        self.last_released = seq
        obs = _obs()
        if obs.enabled:
            obs.metrics.counter("rave_sync_frames_released_total",
                                "complete frames released").inc()
            if stale:
                obs.metrics.counter("rave_sync_frames_dropped_total",
                                    "incomplete frames dropped"
                                    ).inc(len(stale))
        return seq


def blend_slabs(slabs: list[VolumeImage],
                background=(0.0, 0.0, 0.0)) -> np.ndarray:
    """Back-to-front *over* blending of independently rendered volume slabs.

    Slabs are sorted by their distance from the viewer (farthest first) —
    the ordering rule that makes transparency composable across render
    services.  Returns an (h, w, 3) float image in [0, 1].
    """
    if not slabs:
        raise RenderError("nothing to blend")
    shape = slabs[0].rgba.shape
    for s in slabs[1:]:
        if s.rgba.shape != shape:
            raise RenderError("slab image sizes differ")
    ordered = sorted(slabs, key=lambda s: -s.view_distance)
    h, w = shape[:2]
    out = np.empty((h, w, 3), dtype=np.float64)
    out[:] = np.asarray(background, dtype=np.float64)
    for slab in ordered:
        rgb = slab.rgba[..., :3].astype(np.float64)
        a = slab.rgba[..., 3:4].astype(np.float64)
        out = rgb + (1.0 - a) * out   # premultiplied over
    return np.clip(out, 0.0, 1.0)
