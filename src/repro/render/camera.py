"""Camera transforms: world → view → clip → screen.

Right-handed look-at view matrix, OpenGL-style perspective projection, and
a viewport mapping to pixel coordinates with y down (image convention).
The projection keeps ``w = -z_view`` so depth interpolation can be done
perspective-correctly in the rasterizer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RenderError
from repro.scenegraph.nodes import CameraNode


@dataclass
class Camera:
    """An immutable-ish camera with cached matrices."""

    position: np.ndarray
    target: np.ndarray
    up: np.ndarray
    fov_degrees: float
    near: float = 0.05
    far: float = 1000.0

    @classmethod
    def from_node(cls, node: CameraNode, near: float = 0.05,
                  far: float = 1000.0) -> Camera:
        return cls(position=np.asarray(node.position, dtype=np.float64),
                   target=np.asarray(node.target, dtype=np.float64),
                   up=np.asarray(node.up, dtype=np.float64),
                   fov_degrees=float(node.fov_degrees), near=near, far=far)

    @classmethod
    def looking_at(cls, position, target=(0.0, 0.0, 0.0),
                   up=(0.0, 0.0, 1.0), fov_degrees: float = 45.0,
                   **kw) -> Camera:
        return cls(position=np.asarray(position, dtype=np.float64),
                   target=np.asarray(target, dtype=np.float64),
                   up=np.asarray(up, dtype=np.float64),
                   fov_degrees=float(fov_degrees), **kw)

    # -- matrices -------------------------------------------------------------

    def view_matrix(self) -> np.ndarray:
        fwd = self.target - self.position
        norm = np.linalg.norm(fwd)
        if norm == 0:
            raise RenderError("camera position and target coincide")
        fwd = fwd / norm
        upn = self.up / np.linalg.norm(self.up)
        if abs(float(fwd @ upn)) > 0.999:
            # Degenerate up vector: pick any perpendicular axis.
            upn = (np.array([1.0, 0.0, 0.0])
                   if abs(fwd[0]) < 0.9 else np.array([0.0, 1.0, 0.0]))
        right = np.cross(fwd, upn)
        right /= np.linalg.norm(right)
        true_up = np.cross(right, fwd)
        m = np.eye(4)
        m[0, :3] = right
        m[1, :3] = true_up
        m[2, :3] = -fwd
        m[:3, 3] = -m[:3, :3] @ self.position
        return m

    def projection_matrix(self, aspect: float) -> np.ndarray:
        if self.near <= 0 or self.far <= self.near:
            raise RenderError(
                f"bad clip planes near={self.near}, far={self.far}")
        f = 1.0 / np.tan(np.radians(self.fov_degrees) / 2.0)
        m = np.zeros((4, 4))
        m[0, 0] = f / aspect
        m[1, 1] = f
        m[2, 2] = (self.far + self.near) / (self.near - self.far)
        m[2, 3] = 2 * self.far * self.near / (self.near - self.far)
        m[3, 2] = -1.0
        return m

    # -- vertex pipeline --------------------------------------------------------

    def project_vertices(self, vertices: np.ndarray, width: int, height: int
                         ) -> tuple[np.ndarray, np.ndarray]:
        """World-space ``(n, 3)`` → screen ``(n, 3)`` of (x_px, y_px, depth)
        plus the clip-space w (camera distance) for culling/interpolation.

        Screen y grows downward.  ``depth`` is the view-space distance
        (positive in front of the camera) — what the z-buffer compares and
        what depth compositing exchanges between render services.
        """
        v = np.asarray(vertices, dtype=np.float64)
        if v.ndim != 2 or v.shape[1] != 3:
            raise RenderError(f"vertices must be (n, 3); got {v.shape}")
        view = self.view_matrix()
        proj = self.projection_matrix(width / height)
        vh = np.empty((len(v), 4))
        vh[:, :3] = v
        vh[:, 3] = 1.0
        clip = vh @ (proj @ view).T
        w = clip[:, 3]                      # = -z_view = distance along view
        safe_w = np.where(np.abs(w) < 1e-12, 1e-12, w)
        ndc = clip[:, :3] / safe_w[:, None]
        screen = np.empty((len(v), 3))
        screen[:, 0] = (ndc[:, 0] + 1.0) * 0.5 * width
        screen[:, 1] = (1.0 - ndc[:, 1]) * 0.5 * height
        screen[:, 2] = w                    # view-space depth
        return screen, w
