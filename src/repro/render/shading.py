"""Lambert shading: flat (per-face) and Gouraud (per-vertex) intensities.

Matches the Java3D default pipeline closely enough for the figures: a
single directional light plus an ambient term, intensities in [0, 1].
"""

from __future__ import annotations

import numpy as np

from repro.data.meshes import Mesh

#: default light: over the viewer's left shoulder
DEFAULT_LIGHT_DIRECTION = np.array([-0.4, -0.35, -0.85])
DEFAULT_AMBIENT = 0.25


def _unit(v: np.ndarray) -> np.ndarray:
    n = np.linalg.norm(v)
    if n == 0:
        raise ValueError("light direction must be non-zero")
    return v / n


def flat_intensity(mesh: Mesh, light_direction=None,
                   ambient: float = DEFAULT_AMBIENT) -> np.ndarray:
    """Per-face intensity ``(m,)`` from face normals (two-sided)."""
    light = _unit(np.asarray(
        DEFAULT_LIGHT_DIRECTION if light_direction is None
        else light_direction, dtype=np.float64))
    normals = mesh.face_normals().astype(np.float64)
    lambert = np.abs(normals @ -light)  # two-sided: ignore winding
    return np.clip(ambient + (1.0 - ambient) * lambert, 0.0, 1.0)


def gouraud_intensity(mesh: Mesh, light_direction=None,
                      ambient: float = DEFAULT_AMBIENT) -> np.ndarray:
    """Per-vertex intensity ``(n,)`` from area-weighted vertex normals."""
    light = _unit(np.asarray(
        DEFAULT_LIGHT_DIRECTION if light_direction is None
        else light_direction, dtype=np.float64))
    normals = mesh.vertex_normals().astype(np.float64)
    lambert = np.abs(normals @ -light)
    return np.clip(ambient + (1.0 - ambient) * lambert, 0.0, 1.0)
