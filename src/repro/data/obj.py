"""Wavefront OBJ reader and writer.

OBJ is the format RAVE's data service imports (the paper converts the
archive PLY models to OBJ first).  The writer produces the classic
``v x y z`` / ``f a b c`` text form; the reader handles the common dialect:
``v`` with optional per-vertex color extension, ``vn``/``vt`` (ignored for
geometry), negative (relative) indices, ``f`` entries with ``v/vt/vn``
slashes, polygons fan-triangulated, and ``o``/``g``/``s``/comment lines.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.data.meshes import Mesh
from repro.errors import DataFormatError


def write_obj(mesh: Mesh, path: str | Path, precision: int = 6) -> int:
    """Write a mesh as OBJ text; returns the number of bytes written.

    File size matters here: Table 1 reports the models' on-disk OBJ sizes
    (20 MB for 0.83 M triangles ≈ 24 bytes/triangle), which this writer
    matches by emitting the same plain-text layout.
    """
    path = Path(path)
    out = io.StringIO()
    out.write(f"# RAVE reproduction export: {mesh.name}\n")
    out.write(f"o {mesh.name}\n")
    fmt = f"%.{precision}g"
    v = mesh.vertices
    if mesh.colors is not None:
        cols = np.hstack([v, mesh.colors])
        np.savetxt(out, cols, fmt="v " + " ".join([fmt] * 6), comments="")
    else:
        np.savetxt(out, v, fmt="v " + " ".join([fmt] * 3), comments="")
    np.savetxt(out, mesh.faces + 1, fmt="f %d %d %d", comments="")
    data = out.getvalue().encode("ascii")
    path.write_bytes(data)
    return len(data)


def read_obj(path: str | Path) -> Mesh:
    """Read an OBJ file into a :class:`Mesh` (fan-triangulating polygons)."""
    path = Path(path)
    verts: list[list[float]] = []
    colors: list[list[float]] = []
    faces: list[tuple[int, int, int]] = []

    def resolve(token: str, n_verts: int) -> int:
        idx_str = token.split("/")[0]
        if not idx_str:
            raise DataFormatError(f"empty face index in {token!r}")
        idx = int(idx_str)
        if idx < 0:
            idx = n_verts + idx  # relative indexing
        else:
            idx -= 1
        if not (0 <= idx < n_verts):
            raise DataFormatError(f"face index {token!r} out of range")
        return idx

    with path.open("r", encoding="ascii", errors="replace") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            tokens = line.split()
            kind = tokens[0]
            if kind == "v":
                if len(tokens) not in (4, 7):
                    raise DataFormatError(
                        f"{path.name}:{lineno}: bad vertex line {line!r}"
                    )
                verts.append([float(t) for t in tokens[1:4]])
                if len(tokens) == 7:
                    colors.append([float(t) for t in tokens[4:7]])
            elif kind == "f":
                if len(tokens) < 4:
                    raise DataFormatError(
                        f"{path.name}:{lineno}: face needs >=3 vertices"
                    )
                idx = [resolve(t, len(verts)) for t in tokens[1:]]
                for k in range(1, len(idx) - 1):  # fan triangulation
                    faces.append((idx[0], idx[k], idx[k + 1]))
            elif kind in ("vn", "vt", "o", "g", "s", "usemtl", "mtllib", "l",
                          "p"):
                continue  # geometry-irrelevant or unsupported primitives
            else:
                raise DataFormatError(
                    f"{path.name}:{lineno}: unknown OBJ directive {kind!r}"
                )
    if not verts:
        raise DataFormatError(f"{path.name}: no vertices found")
    color_arr = None
    if colors:
        if len(colors) != len(verts):
            raise DataFormatError(
                f"{path.name}: color given for {len(colors)} of "
                f"{len(verts)} vertices"
            )
        color_arr = np.asarray(colors, dtype=np.float32)
    return Mesh(
        np.asarray(verts, dtype=np.float32),
        np.asarray(faces, dtype=np.int32).reshape(-1, 3),
        color_arr,
        name=path.stem,
    )
