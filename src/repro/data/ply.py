"""PLY (Stanford polygon format) reader and writer.

The paper's models originate as PLY files from the Georgia Tech Large
Geometric Models Archive; RAVE converts them to Wavefront OBJ before import.
Both ``ascii 1.0`` and ``binary_little_endian 1.0`` variants are supported —
binary is what the archives actually ship and what keeps 2.8 M-triangle
round-trips fast (bulk ``numpy`` reads, no per-element Python loops).
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.data.meshes import Mesh
from repro.errors import DataFormatError

_PLY_DTYPES = {
    "char": "i1", "int8": "i1",
    "uchar": "u1", "uint8": "u1",
    "short": "i2", "int16": "i2",
    "ushort": "u2", "uint16": "u2",
    "int": "i4", "int32": "i4",
    "uint": "u4", "uint32": "u4",
    "float": "f4", "float32": "f4",
    "double": "f8", "float64": "f8",
}


def write_ply(mesh: Mesh, path: str | Path, binary: bool = True) -> int:
    """Write a mesh as PLY; returns the number of bytes written."""
    path = Path(path)
    has_color = mesh.colors is not None
    fmt = "binary_little_endian" if binary else "ascii"
    header_lines = [
        "ply",
        f"format {fmt} 1.0",
        "comment produced by the RAVE reproduction",
        f"element vertex {mesh.n_vertices}",
        "property float x",
        "property float y",
        "property float z",
    ]
    if has_color:
        header_lines += [
            "property uchar red",
            "property uchar green",
            "property uchar blue",
        ]
    header_lines += [
        f"element face {mesh.n_triangles}",
        "property list uchar int vertex_indices",
        "end_header",
    ]
    header = ("\n".join(header_lines) + "\n").encode("ascii")

    with path.open("wb") as fh:
        fh.write(header)
        if binary:
            if has_color:
                vdt = np.dtype([("xyz", "<f4", 3), ("rgb", "u1", 3)])
                vbuf = np.empty(mesh.n_vertices, dtype=vdt)
                vbuf["xyz"] = mesh.vertices
                vbuf["rgb"] = np.clip(mesh.colors * 255.0, 0, 255).astype("u1")
            else:
                vbuf = mesh.vertices.astype("<f4")
            fh.write(vbuf.tobytes())
            fdt = np.dtype([("n", "u1"), ("idx", "<i4", 3)])
            fbuf = np.empty(mesh.n_triangles, dtype=fdt)
            fbuf["n"] = 3
            fbuf["idx"] = mesh.faces
            fh.write(fbuf.tobytes())
        else:
            out = io.StringIO()
            if has_color:
                rgb = np.clip(mesh.colors * 255.0, 0, 255).astype(int)
                for (x, y, z), (r, g, b) in zip(mesh.vertices, rgb):
                    out.write(f"{x:g} {y:g} {z:g} {r} {g} {b}\n")
            else:
                for x, y, z in mesh.vertices:
                    out.write(f"{x:g} {y:g} {z:g}\n")
            for a, b, c in mesh.faces:
                out.write(f"3 {a} {b} {c}\n")
            fh.write(out.getvalue().encode("ascii"))
    return path.stat().st_size


def _parse_header(fh) -> tuple[str, list[tuple[str, int, list[tuple[str, str]]]]]:
    """Parse the PLY header; returns (format, [(element, count, props)])."""
    magic = fh.readline().strip()
    if magic != b"ply":
        raise DataFormatError("not a PLY file (missing 'ply' magic)")
    fmt = None
    elements: list[tuple[str, int, list[tuple[str, str]]]] = []
    while True:
        line = fh.readline()
        if not line:
            raise DataFormatError("PLY header truncated (no end_header)")
        tokens = line.decode("ascii", "replace").strip().split()
        if not tokens or tokens[0] == "comment":
            continue
        if tokens[0] == "format":
            fmt = tokens[1]
        elif tokens[0] == "element":
            elements.append((tokens[1], int(tokens[2]), []))
        elif tokens[0] == "property":
            if not elements:
                raise DataFormatError("property before element in PLY header")
            if tokens[1] == "list":
                elements[-1][2].append(("list", f"{tokens[2]}:{tokens[3]}"))
            else:
                elements[-1][2].append((tokens[2], tokens[1]))
        elif tokens[0] == "end_header":
            break
    if fmt not in ("ascii", "binary_little_endian"):
        raise DataFormatError(f"unsupported PLY format {fmt!r}")
    return fmt, elements


def read_ply(path: str | Path) -> Mesh:
    """Read a PLY file (ascii or binary little-endian) into a :class:`Mesh`."""
    path = Path(path)
    with path.open("rb") as fh:
        fmt, elements = _parse_header(fh)
        vertices = None
        colors = None
        faces = None
        for name, count, props in elements:
            if name == "vertex":
                scalar_props = [(pn, pt) for pn, pt in props if pn != "list"]
                dtype = np.dtype([
                    (pn, "<" + _PLY_DTYPES[pt]) for pn, pt in scalar_props
                ])
                if fmt == "binary_little_endian":
                    raw = fh.read(dtype.itemsize * count)
                    if len(raw) != dtype.itemsize * count:
                        raise DataFormatError("PLY vertex data truncated")
                    rec = np.frombuffer(raw, dtype=dtype)
                else:
                    rows = [fh.readline().split() for _ in range(count)]
                    arr = np.array(rows, dtype=np.float64)
                    rec_dtype = np.dtype(
                        [(pn, "f8") for pn, _ in scalar_props])
                    rec = np.zeros(count, dtype=rec_dtype)
                    for i, (pn, _) in enumerate(scalar_props):
                        rec[pn] = arr[:, i]
                names = rec.dtype.names
                for axis in "xyz":
                    if axis not in names:
                        raise DataFormatError(f"PLY vertex missing {axis!r}")
                vertices = np.stack(
                    [rec["x"], rec["y"], rec["z"]], axis=1
                ).astype(np.float32)
                if all(ch in names for ch in ("red", "green", "blue")):
                    colors = np.stack(
                        [rec["red"], rec["green"], rec["blue"]], axis=1
                    ).astype(np.float32) / 255.0
            elif name == "face":
                if fmt == "binary_little_endian":
                    # Fast path: assume uniform triangles (true for every
                    # archive model the paper uses); verify as we go.
                    list_type = next(pt for pn, pt in props if pn == "list")
                    cnt_t, idx_t = list_type.split(":")
                    fdt = np.dtype([
                        ("n", _PLY_DTYPES[cnt_t]),
                        ("idx", "<" + _PLY_DTYPES[idx_t], 3),
                    ])
                    raw = fh.read(fdt.itemsize * count)
                    if len(raw) != fdt.itemsize * count:
                        raise DataFormatError("PLY face data truncated")
                    rec = np.frombuffer(raw, dtype=fdt)
                    if count and not (rec["n"] == 3).all():
                        raise DataFormatError(
                            "non-triangular PLY faces are not supported"
                        )
                    faces = rec["idx"].astype(np.int32)
                else:
                    rows = []
                    for _ in range(count):
                        tok = fh.readline().split()
                        if int(tok[0]) != 3:
                            raise DataFormatError(
                                "non-triangular PLY faces are not supported"
                            )
                        rows.append([int(tok[1]), int(tok[2]), int(tok[3])])
                    faces = np.array(rows, dtype=np.int32).reshape(-1, 3)
    if vertices is None or faces is None:
        raise DataFormatError("PLY file lacks vertex or face element")
    return Mesh(vertices, faces, colors, name=path.stem)
