"""Iso-surface extraction (the skeleton model's stated provenance).

The paper: the skeleton "was processed by marching cubes and a polygon
decimation algorithm".  This module implements iso-surface extraction using
the marching-tetrahedra decomposition of marching cubes: each cell is split
into six tetrahedra, and each tetrahedron contributes 0, 1 or 2 triangles
with vertices interpolated along its edges.  The tetrahedral variant is
topologically unambiguous (no marching-cubes case-13 holes) and its case
analysis is derived in code rather than from a transcribed 256-entry table.

The implementation is vectorized per (tetrahedron, case) pair — at most
6 x 14 small iterations, each operating on every matching cell at once.
"""

from __future__ import annotations


import numpy as np

from repro.data.meshes import Mesh
from repro.data.volumes import VoxelVolume

# Cube corners indexed 0..7 with bit k of the index giving the offset along
# axis k: corner c has offset ((c >> 0) & 1, (c >> 1) & 1, (c >> 2) & 1).
_CORNER_OFFSETS = np.array(
    [[(c >> 0) & 1, (c >> 1) & 1, (c >> 2) & 1] for c in range(8)],
    dtype=np.int64,
)

# Six-tetrahedra decomposition of the cube around the main diagonal 0-7.
# Every tetrahedron shares corners 0 and 7, walking the remaining corners
# along faces; this tiling is conforming across neighbouring cubes.
_TETS = np.array([
    [0, 1, 3, 7],
    [0, 3, 2, 7],
    [0, 2, 6, 7],
    [0, 6, 4, 7],
    [0, 4, 5, 7],
    [0, 5, 1, 7],
], dtype=np.int64)

# Tetrahedron edges as (corner a, corner b) local index pairs.
_TET_EDGES = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
_EDGE_INDEX = {e: i for i, e in enumerate(_TET_EDGES)}


def _case_triangles(case: int) -> list[tuple[tuple[int, int], ...]]:
    """Triangles (as tuples of tet edges) for one inside/outside case.

    ``case`` bit k set means local tet vertex k is inside (value >= iso).
    Winding is fixed afterwards by a geometric orientation pass, so only
    the edge sets matter here.
    """
    inside = [k for k in range(4) if case & (1 << k)]
    outside = [k for k in range(4) if not case & (1 << k)]
    if len(inside) in (0, 4):
        return []

    def edge(a: int, b: int) -> tuple[int, int]:
        return (a, b) if (a, b) in _EDGE_INDEX else (b, a)

    if len(inside) == 1:
        i = inside[0]
        e = [edge(i, j) for j in outside]
        return [(e[0], e[1], e[2])]
    if len(inside) == 3:
        o = outside[0]
        e = [edge(o, j) for j in inside]
        return [(e[0], e[1], e[2])]
    # two inside, two outside: quad split into two triangles
    i0, i1 = inside
    o0, o1 = outside
    a = edge(i0, o0)
    b = edge(i0, o1)
    c = edge(i1, o1)
    d = edge(i1, o0)
    return [(a, b, c), (a, c, d)]


_CASE_TABLE = {case: _case_triangles(case) for case in range(16)}


def marching_cubes(volume: VoxelVolume, iso: float) -> Mesh:
    """Extract the ``iso``-surface of a voxel volume as a triangle mesh.

    Vertices land on cell edges by linear interpolation; triangles are
    consistently wound so normals point from the inside (>= iso) region
    outwards.
    """
    vals = volume.values.astype(np.float64)
    nx, ny, nz = vals.shape
    if min(nx, ny, nz) < 2:
        return Mesh(np.zeros((0, 3), np.float32), np.zeros((0, 3), np.int32),
                    name=f"{volume.name}_iso")

    # Per-corner value and world-position arrays over all cells, flattened.
    xs, ys, zs = volume.world_coords()
    cell_idx = np.stack(np.meshgrid(
        np.arange(nx - 1), np.arange(ny - 1), np.arange(nz - 1),
        indexing="ij"), axis=-1).reshape(-1, 3)

    corner_vals = np.empty((len(cell_idx), 8), dtype=np.float64)
    corner_pos = np.empty((len(cell_idx), 8, 3), dtype=np.float64)
    for c in range(8):
        off = _CORNER_OFFSETS[c]
        ii = cell_idx[:, 0] + off[0]
        jj = cell_idx[:, 1] + off[1]
        kk = cell_idx[:, 2] + off[2]
        corner_vals[:, c] = vals[ii, jj, kk]
        corner_pos[:, c, 0] = xs[ii]
        corner_pos[:, c, 1] = ys[jj]
        corner_pos[:, c, 2] = zs[kk]

    # Skip cells whose value range cannot cross the iso level.
    active = (corner_vals.min(axis=1) <= iso) & (corner_vals.max(axis=1) >= iso)
    corner_vals = corner_vals[active]
    corner_pos = corner_pos[active]

    tri_chunks: list[np.ndarray] = []
    for tet in _TETS:
        tvals = corner_vals[:, tet]                    # (m, 4)
        tpos = corner_pos[:, tet, :]                   # (m, 4, 3)
        inside = tvals >= iso
        case_ids = (inside * (1 << np.arange(4))).sum(axis=1)
        for case, triangles in _CASE_TABLE.items():
            if not triangles:
                continue
            mask = case_ids == case
            if not mask.any():
                continue
            cv = tvals[mask]
            cp = tpos[mask]

            def interp(edge: tuple[int, int]) -> np.ndarray:
                a, b = edge
                va, vb = cv[:, a], cv[:, b]
                denom = vb - va
                t = np.where(np.abs(denom) > 1e-30, (iso - va) / denom, 0.5)
                t = np.clip(t, 0.0, 1.0)[:, None]
                return cp[:, a, :] * (1 - t) + cp[:, b, :] * t

            inside_vertex = [k for k in range(4) if case & (1 << k)][0]
            anchor = cp[:, inside_vertex, :]
            for tri in triangles:
                p0 = interp(tri[0])
                p1 = interp(tri[1])
                p2 = interp(tri[2])
                # Orient so the normal points away from the inside region.
                normal = np.cross(p1 - p0, p2 - p0)
                centroid = (p0 + p1 + p2) / 3.0
                flip = (normal * (centroid - anchor)).sum(axis=1) < 0
                p1f = np.where(flip[:, None], p2, p1)
                p2f = np.where(flip[:, None], p1, p2)
                tri_chunks.append(
                    np.stack([p0, p1f, p2f], axis=1).reshape(-1, 3)
                )

    if not tri_chunks:
        return Mesh(np.zeros((0, 3), np.float32), np.zeros((0, 3), np.int32),
                    name=f"{volume.name}_iso")

    soup = np.concatenate(tri_chunks)                  # (3*t, 3) vertex soup
    # Weld shared vertices: edge intersections are computed identically for
    # neighbouring tets, so exact quantized dedup is safe.
    quant = np.round(soup / 1e-7).astype(np.int64)
    uniq, inverse = np.unique(quant, axis=0, return_inverse=True)
    verts = np.zeros((len(uniq), 3), dtype=np.float64)
    counts = np.bincount(inverse, minlength=len(uniq)).astype(np.float64)
    for axis in range(3):
        verts[:, axis] = (
            np.bincount(inverse, weights=soup[:, axis], minlength=len(uniq))
            / counts
        )
    faces = inverse.reshape(-1, 3).astype(np.int32)
    # Drop degenerate (zero-area after welding) triangles.
    keep = (
        (faces[:, 0] != faces[:, 1])
        & (faces[:, 1] != faces[:, 2])
        & (faces[:, 0] != faces[:, 2])
    )
    return Mesh(verts.astype(np.float32), faces[keep],
                name=f"{volume.name}_iso")
