"""Deterministic procedural generators for the paper's benchmark models.

The paper's models (Table 1) come from archives we cannot ship:

======================  ===========  =========  ==========================
model                   triangles    file size  provenance in the paper
======================  ===========  =========  ==========================
Skeletal Hand           0.83 million 20 MB      Clemson Stereolithography
Skeleton                2.8 million  75 MB      Visible Man, marching cubes
Galleon                 5.5 k        0.3 MB     Java3D example file
Elle                    50 k         —          Blaxxun VRML benchmark
======================  ===========  =========  ==========================

Each generator here builds a geometrically-plausible stand-in from swept
tubes, lathed profiles and parametric patches, and accepts a
``target_triangles`` knob that scales tessellation density until the count
lands within a few percent of the request — so the benchmarks run at the
paper's exact polygon budgets while tests and examples use small instances.
All generation is vectorized; no per-vertex Python loops.
"""

from __future__ import annotations

import math
from collections.abc import Callable

import numpy as np

from repro.data.meshes import Mesh, merge_meshes

# --------------------------------------------------------------------------
# parametric building blocks
# --------------------------------------------------------------------------


def grid_faces(nu: int, nv: int, wrap_u: bool = False) -> np.ndarray:
    """Triangulate a ``nu x nv`` vertex grid into ``2*(nu-1)*(nv-1)`` faces.

    With ``wrap_u`` the first and last rows are stitched (closed tube).
    """
    rows = nu if wrap_u else nu - 1
    i = np.arange(rows)[:, None]
    j = np.arange(nv - 1)[None, :]
    i_next = (i + 1) % nu if wrap_u else i + 1
    v00 = (i * nv + j).ravel()
    v01 = (i * nv + j + 1).ravel()
    v10 = (i_next * nv + j).ravel()
    v11 = (i_next * nv + j + 1).ravel()
    tri1 = np.stack([v00, v10, v11], axis=1)
    tri2 = np.stack([v00, v11, v01], axis=1)
    return np.concatenate([tri1, tri2]).astype(np.int32)


def uv_sphere(radius: float = 1.0, nu: int = 16, nv: int = 16,
              center=(0.0, 0.0, 0.0), squash=(1.0, 1.0, 1.0),
              name: str = "sphere") -> Mesh:
    """Latitude/longitude sphere, optionally squashed into an ellipsoid."""
    nu = max(3, nu)
    nv = max(3, nv)
    theta = np.linspace(0.0, math.pi, nv)          # latitude
    phi = np.linspace(0.0, 2 * math.pi, nu, endpoint=False)  # longitude
    st, ct = np.sin(theta), np.cos(theta)
    sp, cp = np.sin(phi), np.cos(phi)
    x = radius * np.outer(cp, st) * squash[0]
    y = radius * np.outer(sp, st) * squash[1]
    z = radius * np.outer(np.ones_like(cp), ct) * squash[2]
    verts = np.stack([x, y, z], axis=-1).reshape(-1, 3) + np.asarray(center)
    faces = grid_faces(nu, nv, wrap_u=True)
    return Mesh(verts, faces, name=name)


def box(size=(1.0, 1.0, 1.0), center=(0.0, 0.0, 0.0), n: int = 1,
        name: str = "box") -> Mesh:
    """Axis-aligned box; each face subdivided into an ``n x n`` grid."""
    n = max(1, n)
    half = np.asarray(size, dtype=np.float64) / 2.0
    center = np.asarray(center, dtype=np.float64)
    pieces = []
    lin = np.linspace(-1.0, 1.0, n + 1)
    uu, vv = np.meshgrid(lin, lin, indexing="ij")
    for axis in range(3):
        for sign in (-1.0, 1.0):
            pts = np.zeros(uu.shape + (3,))
            other = [a for a in range(3) if a != axis]
            pts[..., other[0]] = uu * half[other[0]]
            pts[..., other[1]] = vv * half[other[1]]
            pts[..., axis] = sign * half[axis]
            verts = pts.reshape(-1, 3) + center
            faces = grid_faces(n + 1, n + 1)
            if sign < 0:
                faces = faces[:, ::-1]  # keep outward winding
            pieces.append(Mesh(verts, faces))
    return merge_meshes(pieces, name=name)


def _frames_along(path: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Tangent/normal/binormal frames along a polyline (vectorized)."""
    tangents = np.gradient(path, axis=0)
    norms = np.linalg.norm(tangents, axis=1, keepdims=True)
    np.maximum(norms, 1e-12, out=norms)
    tangents = tangents / norms
    # Pick a reference vector least aligned with the mean tangent.
    ref = np.array([0.0, 0.0, 1.0])
    if abs(float(tangents[:, 2].mean())) > 0.9:
        ref = np.array([1.0, 0.0, 0.0])
    normals = np.cross(tangents, ref)
    nn = np.linalg.norm(normals, axis=1, keepdims=True)
    # Degenerate rows (tangent parallel to ref): fall back to another axis.
    bad = (nn[:, 0] < 1e-8)
    if bad.any():
        normals[bad] = np.cross(tangents[bad], np.array([0.0, 1.0, 0.0]))
        nn = np.linalg.norm(normals, axis=1, keepdims=True)
        np.maximum(nn, 1e-12, out=nn)
    normals = normals / nn
    binormals = np.cross(tangents, normals)
    return tangents, normals, binormals


def tube(path: np.ndarray, radii, n_around: int = 12, cap: bool = True,
         name: str = "tube") -> Mesh:
    """Sweep a circle of (per-station) radius along a polyline path.

    ``radii`` may be a scalar or a per-station array — tapering bones and
    masts are built this way.
    """
    path = np.asarray(path, dtype=np.float64)
    if path.ndim != 2 or path.shape[1] != 3 or len(path) < 2:
        raise ValueError(f"path must be (k>=2, 3); got {path.shape}")
    k = len(path)
    radii = np.broadcast_to(np.asarray(radii, dtype=np.float64), (k,))
    n_around = max(3, n_around)
    _, normals, binormals = _frames_along(path)
    ang = np.linspace(0, 2 * math.pi, n_around, endpoint=False)
    circ = np.stack([np.cos(ang), np.sin(ang)], axis=1)  # (n_around, 2)
    # rings: (k, n_around, 3) via broadcasting
    rings = (
        path[:, None, :]
        + radii[:, None, None]
        * (circ[None, :, 0:1] * normals[:, None, :]
           + circ[None, :, 1:2] * binormals[:, None, :])
    )
    verts = rings.reshape(-1, 3)
    # Grid is (k stations) x (n_around around), wrap around the circle.
    faces = grid_faces(n_around, k, wrap_u=True)
    # grid_faces assumes (nu=n_around rows, nv=k cols) layout; build index map.
    # rings are laid out station-major, so transpose indexing:
    idx = np.arange(k * n_around).reshape(k, n_around).T.reshape(-1)
    faces = idx[faces]
    mesh = Mesh(verts, faces.astype(np.int32), name=name)
    if cap:
        caps = []
        for station, direction in ((0, -1), (k - 1, 1)):
            center = path[station]
            ring_idx = np.arange(n_around)
            ring = rings[station]
            cverts = np.concatenate([ring, center[None, :]])
            i = ring_idx
            j = (ring_idx + 1) % n_around
            tris = np.stack([i, j, np.full(n_around, n_around)], axis=1)
            if direction < 0:
                tris = tris[:, ::-1]
            caps.append(Mesh(cverts, tris.astype(np.int32)))
        mesh = merge_meshes([mesh, *caps], name=name)
    return mesh


def lathe(profile: np.ndarray, n_around: int = 24, name: str = "lathe") -> Mesh:
    """Surface of revolution around the z axis.

    ``profile`` is ``(k, 2)`` of (radius, z) pairs.
    """
    profile = np.asarray(profile, dtype=np.float64)
    k = len(profile)
    n_around = max(3, n_around)
    ang = np.linspace(0, 2 * math.pi, n_around, endpoint=False)
    r = profile[:, 0][None, :]
    z = profile[:, 1][None, :]
    x = np.cos(ang)[:, None] * r
    y = np.sin(ang)[:, None] * r
    zz = np.broadcast_to(z, x.shape)
    verts = np.stack([x, y, zz], axis=-1).reshape(-1, 3)
    faces = grid_faces(n_around, k, wrap_u=True)
    return Mesh(verts, faces, name=name)


def patch(fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
          nu: int, nv: int, name: str = "patch") -> Mesh:
    """Tessellate a parametric patch ``fn(u, v) -> (..., 3)`` over [0,1]^2."""
    u = np.linspace(0.0, 1.0, nu)
    v = np.linspace(0.0, 1.0, nv)
    uu, vv = np.meshgrid(u, v, indexing="ij")
    verts = np.asarray(fn(uu, vv), dtype=np.float64).reshape(-1, 3)
    return Mesh(verts, grid_faces(nu, nv), name=name)


# --------------------------------------------------------------------------
# scaling machinery
# --------------------------------------------------------------------------


def _scaled(base_builder: Callable[[float], Mesh], base_count: int,
            target_triangles: int | None, tolerance: float = 0.05) -> Mesh:
    """Call ``base_builder(density)`` with the density that hits the target.

    Triangle count of a surface tessellation grows ~ quadratically with the
    linear density factor; two Newton-style corrections land within
    ``tolerance`` of the target for every model in the registry.
    """
    if target_triangles is None:
        return base_builder(1.0)
    if target_triangles < 1:
        raise ValueError("target_triangles must be positive")
    density = math.sqrt(target_triangles / base_count)
    mesh = base_builder(density)
    for _ in range(4):
        err = mesh.n_triangles / target_triangles
        if abs(err - 1.0) <= tolerance:
            break
        density /= math.sqrt(err)
        mesh = base_builder(density)
    return mesh


def _d(value: float, density: float, lo: int = 3) -> int:
    """Scale a tessellation parameter by the density factor."""
    return max(lo, int(round(value * density)))


# --------------------------------------------------------------------------
# the four named models
# --------------------------------------------------------------------------


def _finger(origin: np.ndarray, direction: np.ndarray, lengths, radius: float,
            density: float, curl: float = 0.35) -> list[Mesh]:
    """Three tapering phalanx tubes with joint spheres, curling downwards."""
    parts: list[Mesh] = []
    pos = np.asarray(origin, dtype=np.float64)
    d = np.asarray(direction, dtype=np.float64)
    d = d / np.linalg.norm(d)
    down = np.array([0.0, 0.0, -1.0])
    r = radius
    for i, ln in enumerate(lengths):
        # curl: rotate direction towards -z a little per phalanx
        d = d + curl * i * down * 0.4
        d = d / np.linalg.norm(d)
        stations = _d(6, density)
        t = np.linspace(0.0, 1.0, stations)[:, None]
        path = pos + t * d * ln
        taper = np.linspace(r, r * 0.82, stations)
        parts.append(tube(path, taper, n_around=_d(10, density), cap=False,
                          name="phalanx"))
        pos = path[-1]
        parts.append(uv_sphere(r * 0.95, _d(8, density), _d(8, density),
                               center=pos, name="joint"))
        r *= 0.85
    return parts


def _build_hand(density: float) -> Mesh:
    """Skeletal hand: carpal block, five metacarpals + fingers."""
    parts: list[Mesh] = []
    # carpals / palm base: cluster of small ellipsoids like carpal bones
    rng = np.random.default_rng(42)
    for i in range(8):
        c = np.array([
            -0.35 + 0.2 * (i % 4),
            -0.95 - 0.18 * (i // 4),
            0.0,
        ]) + rng.normal(0, 0.02, 3)
        parts.append(uv_sphere(0.13, _d(10, density), _d(10, density), center=c,
                               squash=(1.0, 0.8, 0.6), name="carpal"))
    # metacarpals: five tapering tubes fanning out from the wrist
    finger_x = np.linspace(-0.45, 0.45, 5)
    finger_len = np.array([0.55, 0.75, 0.85, 0.78, 0.60])
    for i in range(5):
        start = np.array([finger_x[i] * 0.5, -0.75, 0.0])
        end = np.array([finger_x[i], 0.0, 0.0])
        stations = _d(8, density)
        t = np.linspace(0.0, 1.0, stations)[:, None]
        path = start + t * (end - start)
        parts.append(tube(path, np.linspace(0.085, 0.075, stations),
                          n_around=_d(10, density), cap=False,
                          name="metacarpal"))
        parts.append(uv_sphere(0.09, _d(8, density), _d(8, density), center=end,
                               name="knuckle"))
    # thumb sits off to the side with 2 phalanges; fingers have 3
    for i in range(5):
        base = np.array([finger_x[i], 0.0, 0.0])
        direction = np.array([finger_x[i] * 0.25, 1.0, 0.0])
        lengths = finger_len[i] * np.array([0.45, 0.32, 0.23])
        if i == 0:  # thumb
            base = np.array([-0.65, -0.55, 0.05])
            direction = np.array([-0.8, 0.9, 0.1])
            lengths = np.array([0.3, 0.25])
        parts.extend(_finger(base, direction, lengths, 0.075, density))
    return merge_meshes(parts, name="skeletal_hand")


def _build_skeleton(density: float) -> Mesh:
    """Full skeleton: skull, spine, ribcage, pelvis, arms, legs."""
    parts: list[Mesh] = []
    # skull: cranium + jaw
    parts.append(uv_sphere(0.40, _d(24, density), _d(24, density),
                           center=(0, 0, 3.4), squash=(0.85, 1.0, 1.05),
                           name="cranium"))
    parts.append(uv_sphere(0.22, _d(14, density), _d(14, density),
                           center=(0, 0.18, 3.08), squash=(0.9, 1.0, 0.6),
                           name="jaw"))
    # spine: 24 vertebrae as short lathed discs with processes
    z = np.linspace(3.0, 1.1, 24)
    for i, zi in enumerate(z):
        r = 0.09 + 0.035 * (i / 24.0)  # lumbar vertebrae are bigger
        profile = np.array([
            [r * 0.4, -0.035], [r, -0.03], [r, 0.03], [r * 0.4, 0.035],
        ])
        body = lathe(profile, n_around=_d(12, density), name="vertebra")
        parts.append(body.translated((0.0, 0.0, zi)))
        # spinous process
        proc = np.stack([
            np.zeros(4), np.linspace(0.05, 0.22, 4), np.full(4, zi)], axis=1)
        parts.append(tube(proc, 0.03, n_around=_d(6, density), cap=True,
                          name="process"))
    # ribcage: 10 rib pairs, curved tubes
    for i in range(10):
        zi = 2.85 - i * 0.14
        spread = 0.55 + 0.12 * math.sin(math.pi * i / 9.0)
        ang = np.linspace(0.15 * math.pi, 1.02 * math.pi, _d(14, density))
        for side in (-1.0, 1.0):
            path = np.stack([
                side * spread * np.sin(ang),
                -spread * np.cos(ang) * 0.85,
                zi - 0.18 * np.sin(ang / 1.4),
            ], axis=1)
            parts.append(tube(path, 0.032, n_around=_d(7, density), cap=False,
                              name="rib"))
    # sternum
    parts.append(box((0.1, 0.05, 0.7), center=(0, -0.52, 2.35),
                     n=_d(2, density, lo=1), name="sternum"))
    # pelvis: two iliac wings + sacrum
    for side in (-1.0, 1.0):
        parts.append(uv_sphere(0.33, _d(16, density), _d(16, density),
                               center=(side * 0.30, 0.02, 0.95),
                               squash=(0.75, 0.45, 0.9), name="ilium"))
    parts.append(uv_sphere(0.18, _d(10, density), _d(10, density),
                           center=(0, 0.1, 0.85), squash=(0.8, 0.6, 1.0),
                           name="sacrum"))

    def limb(points: list[tuple[float, float, float]], radii: list[float],
             joint: float) -> None:
        pts = np.asarray(points)
        for a in range(len(pts) - 1):
            stations = _d(8, density)
            t = np.linspace(0.0, 1.0, stations)[:, None]
            path = pts[a] + t * (pts[a + 1] - pts[a])
            taper = np.linspace(radii[a], radii[a] * 0.8, stations)
            parts.append(tube(path, taper, n_around=_d(9, density), cap=False,
                              name="long_bone"))
            parts.append(uv_sphere(joint, _d(9, density), _d(9, density),
                                   center=pts[a + 1], name="joint"))

    # arms: humerus, radius+ulna (two parallel bones), hand blob
    for side in (-1.0, 1.0):
        sh = (side * 0.62, 0.0, 2.85)
        el = (side * 0.78, 0.05, 2.05)
        wr = (side * 0.85, 0.02, 1.3)
        limb([sh, el], [0.055], 0.07)
        # paired forearm bones
        off = 0.035
        for k in (-1, 1):
            pts = np.asarray([el, wr]) + np.array([0.0, k * off, 0.0])
            stations = _d(8, density)
            t = np.linspace(0.0, 1.0, stations)[:, None]
            path = pts[0] + t * (pts[1] - pts[0])
            parts.append(tube(path, np.linspace(0.04, 0.03, stations),
                              n_around=_d(8, density), cap=False,
                              name="forearm"))
        parts.append(uv_sphere(0.09, _d(10, density), _d(10, density),
                               center=wr, squash=(0.7, 1.0, 1.4),
                               name="hand"))
    # legs: femur, tibia+fibula, foot
    for side in (-1.0, 1.0):
        hip = (side * 0.3, 0.0, 0.85)
        knee = (side * 0.33, 0.03, -0.25)
        ankle = (side * 0.34, 0.0, -1.3)
        limb([hip, knee], [0.07], 0.09)
        off = 0.04
        for k in (-1, 1):
            pts = np.asarray([knee, ankle]) + np.array([0.0, k * off, 0.0])
            stations = _d(8, density)
            t = np.linspace(0.0, 1.0, stations)[:, None]
            path = pts[0] + t * (pts[1] - pts[0])
            parts.append(tube(path, np.linspace(0.05, 0.035, stations),
                              n_around=_d(8, density), cap=False,
                              name="shin"))
        parts.append(uv_sphere(0.10, _d(10, density), _d(10, density),
                               center=(side * 0.34, -0.18, -1.42),
                               squash=(0.7, 1.8, 0.5), name="foot"))
    return merge_meshes(parts, name="skeleton")


def _build_galleon(density: float) -> Mesh:
    """Sailing ship: lofted hull, deck, three masts, square sails, bowsprit."""
    parts: list[Mesh] = []

    def hull_fn(u, v):
        # u along length, v around the half-section (keel to gunwale, port
        # round to starboard)
        x = (u - 0.5) * 4.0
        # beam profile: widest midships, pinched bow/stern
        beam = 0.55 * np.sin(np.pi * np.clip(u, 0.02, 0.98)) ** 0.6 + 0.05
        theta = (v - 0.5) * np.pi  # -pi/2 .. pi/2
        y = beam * np.sin(theta)
        z = -0.5 * beam * np.cos(theta) + 0.25 * (np.abs(u - 0.5) * 2) ** 2
        return np.stack([x, y, z], axis=-1)

    parts.append(patch(hull_fn, _d(26, density), _d(14, density), name="hull"))
    parts.append(box((3.6, 0.9, 0.06), center=(0, 0, 0.12),
                     n=_d(3, density, lo=1), name="deck"))
    # fore/aft castles
    parts.append(box((0.7, 0.8, 0.35), center=(-1.55, 0, 0.32),
                     n=_d(2, density, lo=1), name="sterncastle"))
    parts.append(box((0.5, 0.7, 0.25), center=(1.45, 0, 0.27),
                     n=_d(2, density, lo=1), name="forecastle"))
    mast_x = [-1.1, 0.0, 1.1]
    mast_h = [1.5, 1.9, 1.4]
    for mx, mh in zip(mast_x, mast_h):
        path = np.stack([np.full(4, mx), np.zeros(4),
                         np.linspace(0.1, mh, 4)], axis=1)
        parts.append(tube(path, np.linspace(0.05, 0.03, 4),
                          n_around=_d(8, density), name="mast"))
        # two yards + curved square sails per mast
        for frac in (0.55, 0.85):
            zy = 0.1 + mh * frac
            yard = np.stack([np.full(3, mx), np.linspace(-0.55, 0.55, 3),
                             np.full(3, zy)], axis=1)
            parts.append(tube(yard, 0.02, n_around=_d(6, density),
                              name="yard"))

            def sail_fn(u, v, mx=mx, zy=zy):
                y = (u - 0.5) * 1.0
                z = zy - v * 0.55
                x = mx + 0.25 * np.sin(np.pi * u) * np.sin(np.pi * v * 0.9)
                return np.stack([x, y, z], axis=-1)

            parts.append(patch(sail_fn, _d(10, density), _d(8, density),
                               name="sail"))
    # bowsprit
    path = np.stack([np.linspace(1.7, 2.5, 3), np.zeros(3),
                     np.linspace(0.25, 0.55, 3)], axis=1)
    parts.append(tube(path, 0.035, n_around=_d(6, density), name="bowsprit"))
    return merge_meshes(parts, name="galleon")


def _build_elle(density: float) -> Mesh:
    """Humanoid figure standing on a pedestal (Blaxxun 'Elle' stand-in)."""
    parts: list[Mesh] = []
    parts.append(uv_sphere(0.22, _d(20, density), _d(20, density),
                           center=(0, 0, 3.1), squash=(0.85, 0.95, 1.1),
                           name="head"))
    # torso from a lathed profile
    profile = np.array([
        [0.02, 2.85], [0.12, 2.82], [0.30, 2.55], [0.26, 2.15],
        [0.30, 1.85], [0.34, 1.55], [0.30, 1.45], [0.02, 1.42],
    ])
    parts.append(lathe(profile, n_around=_d(24, density), name="torso"))

    def smooth_limb(pts, r0, r1):
        pts = np.asarray(pts, dtype=np.float64)
        stations = _d(14, density)
        t = np.linspace(0.0, 1.0, stations)
        # Catmull-Rom-ish smoothing via piecewise linear resample
        seg = np.linspace(0, len(pts) - 1, stations)
        lo = np.clip(seg.astype(int), 0, len(pts) - 2)
        frac = (seg - lo)[:, None]
        path = pts[lo] * (1 - frac) + pts[lo + 1] * frac
        parts.append(tube(path, np.linspace(r0, r1, stations),
                          n_around=_d(14, density), name="limb"))

    for side in (-1.0, 1.0):
        smooth_limb([(side * 0.30, 0, 2.55), (side * 0.42, 0.08, 2.0),
                     (side * 0.40, -0.12, 1.55)], 0.075, 0.05)   # arm
        smooth_limb([(side * 0.14, 0, 1.45), (side * 0.16, 0.05, 0.7),
                     (side * 0.17, -0.03, 0.05)], 0.11, 0.06)    # leg
        parts.append(uv_sphere(0.09, _d(10, density), _d(10, density),
                               center=(side * 0.17, -0.12, 0.0),
                               squash=(0.7, 1.8, 0.45), name="foot"))
    # pedestal
    parts.append(lathe(np.array([[0.02, -0.25], [0.6, -0.25], [0.6, -0.1],
                                 [0.45, -0.08], [0.45, 0.0], [0.02, 0.0]]),
                       n_around=_d(28, density), name="pedestal"))
    return merge_meshes(parts, name="elle")


# --------------------------------------------------------------------------
# public entry points
# --------------------------------------------------------------------------

#: Paper triangle budgets (Table 1 and Section 5.4 dataset descriptions).
PAPER_TRIANGLES = {
    "skeletal_hand": 830_000,
    "skeleton": 2_800_000,
    "galleon": 5_500,
    "elle": 50_000,
}

#: Baseline triangle counts of the density=1.0 builds (approximate; the
#: scaler converges regardless of drift in these).
_BASE_COUNTS = {
    "skeletal_hand": 14_000,
    "skeleton": 40_000,
    "galleon": 5_200,
    "elle": 7_500,
}

_BUILDERS: dict[str, Callable[[float], Mesh]] = {
    "skeletal_hand": _build_hand,
    "skeleton": _build_skeleton,
    "galleon": _build_galleon,
    "elle": _build_elle,
}

#: name -> (builder, paper triangle count)
MODEL_REGISTRY = {
    name: (_BUILDERS[name], PAPER_TRIANGLES[name]) for name in _BUILDERS
}


def make_model(name: str, target_triangles: int | None = None,
               paper_scale: bool = False) -> Mesh:
    """Build a named benchmark model.

    Parameters
    ----------
    name:
        one of ``skeletal_hand``, ``skeleton``, ``galleon``, ``elle``.
    target_triangles:
        approximate triangle budget; ``None`` means the natural base size.
    paper_scale:
        shortcut for ``target_triangles = PAPER_TRIANGLES[name]``.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; choose from {sorted(_BUILDERS)}"
        ) from None
    if paper_scale:
        if target_triangles is not None:
            raise ValueError("pass either target_triangles or paper_scale")
        target_triangles = PAPER_TRIANGLES[name]
    return _scaled(builder, _BASE_COUNTS[name], target_triangles)


def skeletal_hand(target_triangles: int | None = None) -> Mesh:
    """The Clemson skeletal-hand stand-in (paper: 0.83 M triangles, 20 MB)."""
    return make_model("skeletal_hand", target_triangles)


def skeleton(target_triangles: int | None = None) -> Mesh:
    """The Visible-Man skeleton stand-in (paper: 2.8 M triangles, 75 MB)."""
    return make_model("skeleton", target_triangles)


def galleon(target_triangles: int | None = None) -> Mesh:
    """The Java3D Galleon example stand-in (paper: 5.5 k triangles, 0.3 MB)."""
    return make_model("galleon", target_triangles)


def elle(target_triangles: int | None = None) -> Mesh:
    """The Blaxxun VRML 'Elle' benchmark stand-in (paper: 50 k triangles)."""
    return make_model("elle", target_triangles)
