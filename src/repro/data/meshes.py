"""Indexed triangle meshes.

A :class:`Mesh` stores float32 vertices ``(n, 3)`` and int32 faces ``(m, 3)``
— the layout both the rasterizer and the binary marshaller consume without
copies (views, not copies, per the HPC guide).  Optional per-vertex colors
ride along for Gouraud shading.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataFormatError


@dataclass(frozen=True)
class MeshStats:
    """Summary statistics used by capacity planning and Table 1."""

    n_vertices: int
    n_triangles: int
    surface_area: float
    bounds_min: tuple[float, float, float]
    bounds_max: tuple[float, float, float]
    byte_size: int

    @property
    def extent(self) -> tuple[float, float, float]:
        return tuple(b - a for a, b in zip(self.bounds_min, self.bounds_max))


class Mesh:
    """An indexed triangle mesh.

    Parameters
    ----------
    vertices:
        ``(n, 3)`` float array of positions; converted to float32.
    faces:
        ``(m, 3)`` integer array of vertex indices; converted to int32.
    colors:
        optional ``(n, 3)`` float array of per-vertex RGB in [0, 1].
    uv:
        optional ``(n, 2)`` float array of texture coordinates in [0, 1).
    texture:
        optional :class:`~repro.data.textures.Texture` sampled through
        ``uv`` (its bytes count against a render service's texture memory).
    name:
        human-readable label carried through scene graphs and services.
    """

    __slots__ = ("vertices", "faces", "colors", "uv", "texture", "name")

    def __init__(
        self,
        vertices: np.ndarray,
        faces: np.ndarray,
        colors: np.ndarray | None = None,
        name: str = "mesh",
        uv: np.ndarray | None = None,
        texture=None,
    ) -> None:
        vertices = np.ascontiguousarray(vertices, dtype=np.float32)
        faces = np.ascontiguousarray(faces, dtype=np.int32)
        if vertices.ndim != 2 or vertices.shape[1] != 3:
            raise DataFormatError(f"vertices must be (n, 3); got {vertices.shape}")
        if faces.ndim != 2 or faces.shape[1] != 3:
            raise DataFormatError(f"faces must be (m, 3); got {faces.shape}")
        if faces.size and (faces.min() < 0 or faces.max() >= len(vertices)):
            raise DataFormatError(
                f"face indices out of range [0, {len(vertices)}): "
                f"min={faces.min() if faces.size else 0}, "
                f"max={faces.max() if faces.size else 0}"
            )
        if colors is not None:
            colors = np.ascontiguousarray(colors, dtype=np.float32)
            if colors.shape != vertices.shape:
                raise DataFormatError(
                    f"colors must match vertices shape {vertices.shape}; "
                    f"got {colors.shape}"
                )
        if uv is not None:
            uv = np.ascontiguousarray(uv, dtype=np.float32)
            if uv.shape != (len(vertices), 2):
                raise DataFormatError(
                    f"uv must be ({len(vertices)}, 2); got {uv.shape}")
        if texture is not None and uv is None:
            raise DataFormatError("a textured mesh needs uv coordinates")
        self.vertices = vertices
        self.faces = faces
        self.colors = colors
        self.uv = uv
        self.texture = texture
        self.name = name

    # -- basic properties ---------------------------------------------------

    @property
    def n_vertices(self) -> int:
        return len(self.vertices)

    @property
    def n_triangles(self) -> int:
        return len(self.faces)

    @property
    def byte_size(self) -> int:
        """In-memory payload size (what the binary data plane transmits)."""
        size = self.vertices.nbytes + self.faces.nbytes
        if self.colors is not None:
            size += self.colors.nbytes
        if self.uv is not None:
            size += self.uv.nbytes
        if self.texture is not None:
            size += self.texture.nbytes
        return size

    @property
    def texture_bytes(self) -> int:
        """Texture-memory demand on a render service (0 when untextured)."""
        return self.texture.nbytes if self.texture is not None else 0

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Axis-aligned bounding box as ``(min_xyz, max_xyz)`` float32 arrays."""
        if not len(self.vertices):
            zero = np.zeros(3, dtype=np.float32)
            return zero, zero.copy()
        return self.vertices.min(axis=0), self.vertices.max(axis=0)

    def centroid(self) -> np.ndarray:
        if not len(self.vertices):
            return np.zeros(3, dtype=np.float32)
        return self.vertices.mean(axis=0)

    # -- derived geometry ---------------------------------------------------

    def triangle_corners(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The three ``(m, 3)`` corner arrays — fancy-indexed views for the
        rasterizer's vectorized edge functions."""
        v = self.vertices
        f = self.faces
        return v[f[:, 0]], v[f[:, 1]], v[f[:, 2]]

    def face_normals(self) -> np.ndarray:
        """Unit face normals, ``(m, 3)``; degenerate faces get a zero normal."""
        a, b, c = self.triangle_corners()
        n = np.cross(b - a, c - a)
        length = np.linalg.norm(n, axis=1, keepdims=True)
        # Avoid divide-by-zero on degenerate (zero-area) triangles.
        np.maximum(length, np.finfo(np.float32).tiny, out=length)
        return (n / length).astype(np.float32)

    def face_areas(self) -> np.ndarray:
        a, b, c = self.triangle_corners()
        return 0.5 * np.linalg.norm(np.cross(b - a, c - a), axis=1)

    def vertex_normals(self) -> np.ndarray:
        """Area-weighted per-vertex normals for Gouraud shading."""
        a, b, c = self.triangle_corners()
        fn = np.cross(b - a, c - a)  # area-weighted (unnormalised)
        vn = np.zeros_like(self.vertices, dtype=np.float64)
        for k in range(3):
            np.add.at(vn, self.faces[:, k], fn)
        length = np.linalg.norm(vn, axis=1, keepdims=True)
        np.maximum(length, np.finfo(np.float64).tiny, out=length)
        return (vn / length).astype(np.float32)

    def stats(self) -> MeshStats:
        lo, hi = self.bounds()
        return MeshStats(
            n_vertices=self.n_vertices,
            n_triangles=self.n_triangles,
            surface_area=float(self.face_areas().sum()),
            bounds_min=tuple(float(x) for x in lo),
            bounds_max=tuple(float(x) for x in hi),
            byte_size=self.byte_size,
        )

    # -- transforms ---------------------------------------------------------

    def _with_vertices(self, vertices: np.ndarray) -> Mesh:
        """Copy carrying all attributes but new vertex positions."""
        return Mesh(vertices, self.faces, self.colors, self.name,
                    uv=self.uv, texture=self.texture)

    def transformed(self, matrix: np.ndarray) -> Mesh:
        """Return a copy with vertices transformed by a 4x4 matrix."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape != (4, 4):
            raise ValueError(f"expected 4x4 matrix, got {matrix.shape}")
        v = self.vertices.astype(np.float64)
        w = v @ matrix[:3, :3].T + matrix[:3, 3]
        return self._with_vertices(w.astype(np.float32))

    def translated(self, offset) -> Mesh:
        offset = np.asarray(offset, dtype=np.float32)
        return self._with_vertices(self.vertices + offset)

    def scaled(self, factor: float) -> Mesh:
        return self._with_vertices(self.vertices * np.float32(factor))

    def normalized(self, radius: float = 1.0) -> Mesh:
        """Center on the origin and scale the largest extent to ``radius``."""
        lo, hi = self.bounds()
        center = (lo + hi) / 2
        extent = float((hi - lo).max())
        scale = (2.0 * radius / extent) if extent > 0 else 1.0
        return self._with_vertices(
            (self.vertices - center) * np.float32(scale))

    # -- splitting (used by dataset distribution) ----------------------------

    def submesh(self, face_mask: np.ndarray) -> Mesh:
        """Extract the faces selected by a boolean mask, re-indexing vertices.

        This is the primitive behind scene-subset distribution: the data
        service hands each render service a self-contained piece.
        """
        face_mask = np.asarray(face_mask, dtype=bool)
        if face_mask.shape != (self.n_triangles,):
            raise ValueError(
                f"mask must have shape ({self.n_triangles},); got {face_mask.shape}"
            )
        faces = self.faces[face_mask]
        used = np.unique(faces)
        remap = np.full(self.n_vertices, -1, dtype=np.int32)
        remap[used] = np.arange(len(used), dtype=np.int32)
        colors = self.colors[used] if self.colors is not None else None
        uv = self.uv[used] if self.uv is not None else None
        return Mesh(self.vertices[used], remap[faces], colors, self.name,
                    uv=uv, texture=self.texture)

    def split_spatially(self, n_parts: int, axis: int | None = None) -> list["Mesh"]:
        """Split into ``n_parts`` spatially-contiguous pieces along one axis.

        Parts are balanced by *triangle count* (equal-work split), matching
        the paper's goal of handing each recruited render service a share
        proportional to capacity.
        """
        if n_parts < 1:
            raise ValueError("n_parts must be >= 1")
        if n_parts == 1 or self.n_triangles == 0:
            return [self]
        if axis is None:
            lo, hi = self.bounds()
            axis = int(np.argmax(hi - lo))
        a, b, c = self.triangle_corners()
        centers = (a[:, axis] + b[:, axis] + c[:, axis]) / 3.0
        order = np.argsort(centers, kind="stable")
        pieces: list[Mesh] = []
        splits = np.array_split(order, n_parts)
        for idx in splits:
            mask = np.zeros(self.n_triangles, dtype=bool)
            mask[idx] = True
            pieces.append(self.submesh(mask))
        return pieces

    def __repr__(self) -> str:
        return (
            f"Mesh(name={self.name!r}, vertices={self.n_vertices}, "
            f"triangles={self.n_triangles})"
        )


def merge_meshes(meshes: list[Mesh], name: str = "merged") -> Mesh:
    """Concatenate meshes into one, offsetting face indices.

    Per-vertex colors survive (missing ones default to grey).  UVs and the
    texture survive only when every input shares the *same* texture object
    and all carry UVs — a merge across different textures would need an
    atlas, which is out of scope, so it degrades to untextured.
    """
    if not meshes:
        return Mesh(np.zeros((0, 3), np.float32), np.zeros((0, 3), np.int32),
                    name=name)
    verts, faces, colors, uvs = [], [], [], []
    any_colors = any(m.colors is not None for m in meshes)
    shared_texture = meshes[0].texture
    keep_texture = (shared_texture is not None
                    and all(m.texture is shared_texture and m.uv is not None
                            for m in meshes))
    offset = 0
    for m in meshes:
        verts.append(m.vertices)
        faces.append(m.faces + offset)
        if any_colors:
            if m.colors is not None:
                colors.append(m.colors)
            else:
                colors.append(np.full_like(m.vertices, 0.7))
        if keep_texture:
            uvs.append(m.uv)
        offset += m.n_vertices
    return Mesh(
        np.concatenate(verts),
        np.concatenate(faces),
        np.concatenate(colors) if any_colors else None,
        name=name,
        uv=np.concatenate(uvs) if keep_texture else None,
        texture=shared_texture if keep_texture else None,
    )
