"""Polygon decimation (the second half of the skeleton provenance pipeline).

Vertex-clustering decimation: vertices are snapped to a uniform grid, each
occupied cell is replaced by the mean of its vertices, faces are re-indexed
and degenerate/duplicate faces dropped.  Fully vectorized — clustering a
million-triangle mesh is a handful of ``np.unique``/``bincount`` calls.

:func:`decimate` picks the grid resolution automatically to approach a
target triangle count (coarser grid → fewer cells → fewer triangles).
"""

from __future__ import annotations

import numpy as np

from repro.data.meshes import Mesh


def cluster_decimate(mesh: Mesh, grid_resolution: int) -> Mesh:
    """Decimate by clustering vertices onto a ``grid_resolution``^3 lattice."""
    if grid_resolution < 1:
        raise ValueError("grid_resolution must be >= 1")
    if mesh.n_triangles == 0:
        return mesh

    lo, hi = mesh.bounds()
    extent = np.maximum(hi - lo, 1e-12)
    # Cell coordinates per vertex (clamped so hi lands in the last cell).
    cells = np.minimum(
        ((mesh.vertices - lo) / extent * grid_resolution).astype(np.int64),
        grid_resolution - 1,
    )
    keys = (
        cells[:, 0] * grid_resolution * grid_resolution
        + cells[:, 1] * grid_resolution
        + cells[:, 2]
    )
    uniq_keys, inverse = np.unique(keys, return_inverse=True)
    counts = np.bincount(inverse).astype(np.float64)
    new_verts = np.zeros((len(uniq_keys), 3), dtype=np.float64)
    for axis in range(3):
        new_verts[:, axis] = (
            np.bincount(inverse, weights=mesh.vertices[:, axis].astype(np.float64))
            / counts
        )

    new_colors = None
    if mesh.colors is not None:
        new_colors = np.zeros((len(uniq_keys), 3), dtype=np.float64)
        for axis in range(3):
            new_colors[:, axis] = (
                np.bincount(inverse,
                            weights=mesh.colors[:, axis].astype(np.float64))
                / counts
            )
        new_colors = new_colors.astype(np.float32)

    faces = inverse[mesh.faces].astype(np.int32)
    # Remove faces collapsed to a line or point.
    keep = (
        (faces[:, 0] != faces[:, 1])
        & (faces[:, 1] != faces[:, 2])
        & (faces[:, 0] != faces[:, 2])
    )
    faces = faces[keep]
    # Remove duplicate faces (ignoring rotation) that clustering can create.
    canon = np.sort(faces, axis=1)
    _, first = np.unique(canon, axis=0, return_index=True)
    faces = faces[np.sort(first)]

    return Mesh(new_verts.astype(np.float32), faces, new_colors,
                name=f"{mesh.name}_decimated")


def decimate(mesh: Mesh, target_triangles: int, max_iters: int = 8) -> Mesh:
    """Decimate towards ``target_triangles`` by searching the grid resolution.

    Guarantees the result has *at most* ``max(target, original)`` triangles;
    when the target is unreachable exactly, returns the closest grid level
    found (bisection over resolution).
    """
    if target_triangles < 1:
        raise ValueError("target_triangles must be >= 1")
    if mesh.n_triangles <= target_triangles:
        return mesh

    # Triangle count grows roughly with cells^ (2/3 of vertex dimension);
    # bracket then bisect.
    lo_res, hi_res = 1, 2
    while cluster_decimate(mesh, hi_res).n_triangles < target_triangles:
        lo_res = hi_res
        hi_res *= 2
        if hi_res > 4096:
            break

    best = cluster_decimate(mesh, hi_res)
    for _ in range(max_iters):
        if hi_res - lo_res <= 1:
            break
        mid = (lo_res + hi_res) // 2
        cand = cluster_decimate(mesh, mid)
        if cand.n_triangles < target_triangles:
            lo_res = mid
        else:
            hi_res = mid
            best = cand
    # Prefer the closest count between the two brackets.
    lo_mesh = cluster_decimate(mesh, lo_res)
    if (abs(lo_mesh.n_triangles - target_triangles)
            < abs(best.n_triangles - target_triangles)):
        best = lo_mesh
    return best
