"""Dataset substrate: meshes, volumes, file formats and provenance pipelines.

The paper benchmarks two polygonal models it could not redistribute (the
Clemson skeletal hand, 0.83 M triangles / 20 MB, and the Visible-Man
skeleton, 2.8 M triangles / 75 MB) plus two small scenes ("Galleon",
5.5 k and "Elle", 50 k).  This subpackage regenerates equivalents:

- :mod:`repro.data.meshes` — indexed triangle mesh container and statistics;
- :mod:`repro.data.generators` — deterministic procedural generators for all
  four named models, scalable to the paper's exact polygon counts;
- :mod:`repro.data.ply` / :mod:`repro.data.obj` — real PLY and Wavefront OBJ
  readers/writers (the paper converts PLY to OBJ before import);
- :mod:`repro.data.convert` — that PLY→OBJ ingest pipeline;
- :mod:`repro.data.volumes` + :mod:`repro.data.marching_cubes` +
  :mod:`repro.data.decimation` — the stated provenance of the skeleton model
  (CT volume → marching cubes → polygon decimation), implemented for real.
"""

from repro.data.meshes import Mesh, MeshStats, merge_meshes
from repro.data.generators import (
    elle,
    galleon,
    make_model,
    skeletal_hand,
    skeleton,
    MODEL_REGISTRY,
)
from repro.data.ply import read_ply, write_ply
from repro.data.obj import read_obj, write_obj
from repro.data.convert import ply_to_obj
from repro.data.volumes import VoxelVolume, visible_human_phantom
from repro.data.marching_cubes import marching_cubes
from repro.data.decimation import decimate
from repro.data.textures import (
    Texture,
    checkerboard,
    gradient,
    marble,
    planar_uv,
)

__all__ = [
    "Mesh",
    "MeshStats",
    "merge_meshes",
    "skeletal_hand",
    "skeleton",
    "galleon",
    "elle",
    "make_model",
    "MODEL_REGISTRY",
    "read_ply",
    "write_ply",
    "read_obj",
    "write_obj",
    "ply_to_obj",
    "VoxelVolume",
    "visible_human_phantom",
    "marching_cubes",
    "decimate",
    "Texture",
    "checkerboard",
    "marble",
    "gradient",
    "planar_uv",
]
