"""Voxel volumes.

The paper's skeleton model "is taken from the Visible Man project ...
processed by marching cubes and a polygon decimation algorithm", and its
future-work section extends RAVE to voxel rendering with back-to-front
blended volume subsets (à la Visapult).  :class:`VoxelVolume` is the
container both paths use, and :func:`visible_human_phantom` synthesizes a
CT-like density volume whose iso-surface is a recognisable long-bone/torso
phantom — the closest redistributable equivalent of the Visible Man data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataFormatError


@dataclass(frozen=True)
class VolumeStats:
    shape: tuple[int, int, int]
    spacing: tuple[float, float, float]
    vmin: float
    vmax: float
    byte_size: int


class VoxelVolume:
    """A scalar voxel grid with physical spacing.

    Values are float32; ``spacing`` gives the voxel pitch so the iso-surface
    comes out in world units.
    """

    __slots__ = ("values", "spacing", "origin", "name")

    def __init__(self, values: np.ndarray,
                 spacing=(1.0, 1.0, 1.0),
                 origin=(0.0, 0.0, 0.0),
                 name: str = "volume") -> None:
        values = np.ascontiguousarray(values, dtype=np.float32)
        if values.ndim != 3:
            raise DataFormatError(f"volume must be 3-D; got shape {values.shape}")
        self.values = values
        self.spacing = tuple(float(s) for s in spacing)
        self.origin = tuple(float(o) for o in origin)
        self.name = name

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.values.shape  # type: ignore[return-value]

    @property
    def byte_size(self) -> int:
        return self.values.nbytes

    def stats(self) -> VolumeStats:
        return VolumeStats(
            shape=self.shape,
            spacing=self.spacing,
            vmin=float(self.values.min()),
            vmax=float(self.values.max()),
            byte_size=self.byte_size,
        )

    def world_coords(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-axis world coordinates of voxel centers."""
        return tuple(
            self.origin[a] + self.spacing[a] * np.arange(self.shape[a])
            for a in range(3)
        )  # type: ignore[return-value]

    def split_slabs(self, n_parts: int, axis: int = 2) -> list["VoxelVolume"]:
        """Split into contiguous slabs along ``axis``.

        This is the volume analogue of :meth:`Mesh.split_spatially`; slabs
        carry correct ``origin`` offsets so back-to-front blending of their
        independently-rendered images reconstructs the full volume (the
        Visapult scheme the paper's future work adopts).
        """
        if not 1 <= n_parts <= self.shape[axis]:
            raise ValueError(
                f"n_parts must be in [1, {self.shape[axis]}]; got {n_parts}"
            )
        pieces = []
        bounds = np.linspace(0, self.shape[axis], n_parts + 1).astype(int)
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            index = [slice(None)] * 3
            index[axis] = slice(lo, hi)
            origin = list(self.origin)
            origin[axis] += self.spacing[axis] * lo
            pieces.append(VoxelVolume(
                self.values[tuple(index)], self.spacing, tuple(origin),
                name=f"{self.name}[{lo}:{hi}@{axis}]",
            ))
        return pieces


def _capsule_density(grid: tuple[np.ndarray, np.ndarray, np.ndarray],
                     p0, p1, radius: float) -> np.ndarray:
    """Soft density of a capsule (cylinder with spherical caps)."""
    X, Y, Z = grid
    p0 = np.asarray(p0, dtype=np.float64)
    p1 = np.asarray(p1, dtype=np.float64)
    d = p1 - p0
    len2 = float(d @ d) or 1e-12
    # Projection parameter of each voxel onto the segment, clamped
    t = ((X - p0[0]) * d[0] + (Y - p0[1]) * d[1] + (Z - p0[2]) * d[2]) / len2
    t = np.clip(t, 0.0, 1.0)
    cx = p0[0] + t * d[0]
    cy = p0[1] + t * d[1]
    cz = p0[2] + t * d[2]
    dist2 = (X - cx) ** 2 + (Y - cy) ** 2 + (Z - cz) ** 2
    return np.exp(-dist2 / (2.0 * (radius / 2.0) ** 2))


def visible_human_phantom(resolution: int = 64) -> VoxelVolume:
    """Synthetic CT-like torso phantom (bone-density structures in soft tissue).

    The density field contains a spine (bright capsule chain), rib-like
    arcs, and two femur heads, embedded in low-density tissue with smooth
    falloff — enough anatomy that marching cubes + decimation reproduces
    the paper's skeleton-provenance pipeline end to end.
    """
    if resolution < 8:
        raise ValueError("resolution must be >= 8")
    n = resolution
    lin = np.linspace(-1.0, 1.0, n)
    X, Y, Z = np.meshgrid(lin, lin, lin, indexing="ij")
    grid = (X, Y, Z)

    density = 0.08 * np.exp(-(X ** 2 + Y ** 2) / 0.8)  # soft tissue halo

    # spine: chain of capsules along z
    zs = np.linspace(-0.85, 0.85, 9)
    for z0, z1 in zip(zs[:-1], zs[1:]):
        density += 0.9 * _capsule_density(grid, (0, 0.25, z0), (0, 0.25, z1),
                                          0.14)
    # ribs: arcs in x/y at several heights
    theta = np.linspace(0.25 * np.pi, 0.75 * np.pi, 5)
    for zr in np.linspace(0.1, 0.7, 4):
        for t0, t1 in zip(theta[:-1], theta[1:]):
            for side in (-1.0, 1.0):
                a = (side * 0.6 * np.cos(t0), 0.25 - 0.55 * np.sin(t0), zr)
                b = (side * 0.6 * np.cos(t1), 0.25 - 0.55 * np.sin(t1), zr)
                density += 0.55 * _capsule_density(grid, a, b, 0.07)
    # femur heads
    for side in (-1.0, 1.0):
        density += 0.8 * _capsule_density(
            grid, (side * 0.3, 0.0, -0.75), (side * 0.35, 0.0, -0.95), 0.12)

    spacing = 2.0 / (n - 1)
    return VoxelVolume(density, spacing=(spacing,) * 3,
                       origin=(-1.0, -1.0, -1.0), name="visible_human_phantom")
