"""Textures.

"Texture memory" is one of RAVE's capacity metrics ("available polygons
per second, texture memory, support for hardware assisted volume
rendering") and one of its node-cost metrics ("in terms of texture memory
and number of polygons/voxels/points").  This module makes that concrete:
a :class:`Texture` is an RGB image a mesh references through per-vertex UV
coordinates; the rasterizer samples it, the cost model counts its bytes,
and the scheduler refuses placements that exceed a service's texture
memory.

Procedural generators (checkerboard, turbulence marble, linear gradient)
stand in for scanned texture assets.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataFormatError


class Texture:
    """An RGB texture image with wrap-around sampling."""

    __slots__ = ("image", "name")

    def __init__(self, image: np.ndarray, name: str = "texture") -> None:
        image = np.ascontiguousarray(image, dtype=np.uint8)
        if image.ndim != 3 or image.shape[2] != 3:
            raise DataFormatError(
                f"texture must be (h, w, 3) uint8; got {image.shape}")
        if image.shape[0] < 1 or image.shape[1] < 1:
            raise DataFormatError("texture must have at least one texel")
        self.image = image
        self.name = name

    @property
    def width(self) -> int:
        return self.image.shape[1]

    @property
    def height(self) -> int:
        return self.image.shape[0]

    @property
    def nbytes(self) -> int:
        return self.image.nbytes

    def sample(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Nearest-texel lookup with wrap addressing; u/v in [0, 1)."""
        u = np.asarray(u, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        x = (np.floor(u * self.width).astype(np.int64)) % self.width
        # image row 0 is the top; v grows upward in UV convention
        y = (self.height - 1
             - np.floor(v * self.height).astype(np.int64) % self.height)
        return self.image[y, x].astype(np.float64)

    def __repr__(self) -> str:
        return (f"Texture(name={self.name!r}, {self.width}x{self.height}, "
                f"{self.nbytes / 1024:.0f} kB)")


def checkerboard(size: int = 64, squares: int = 8,
                 color_a=(230, 230, 230), color_b=(40, 40, 60)) -> Texture:
    """The classic UV-debugging checkerboard."""
    if squares < 1 or size < squares:
        raise DataFormatError("need size >= squares >= 1")
    idx = (np.arange(size) * squares // size)
    pattern = (idx[:, None] + idx[None, :]) % 2
    img = np.where(pattern[..., None] == 0,
                   np.asarray(color_a, np.uint8),
                   np.asarray(color_b, np.uint8))
    return Texture(img.astype(np.uint8), name=f"checker{squares}")


def marble(size: int = 128, seed: int = 5,
           base=(200, 195, 185), vein=(90, 80, 110)) -> Texture:
    """Turbulence-based marble (sum of octave noise through a sine)."""
    rng = np.random.default_rng(seed)
    noise = np.zeros((size, size))
    for octave in range(1, 5):
        freq = 2 ** octave
        grid = rng.random((freq + 1, freq + 1))
        ix = np.linspace(0, freq, size)
        x0 = np.clip(ix.astype(int), 0, freq - 1)
        fx = ix - x0
        # bilinear upsample of the octave grid
        row = (grid[x0][:, x0] * (1 - fx)[None, :]
               + grid[x0][:, x0 + 1] * fx[None, :])
        row2 = (grid[x0 + 1][:, x0] * (1 - fx)[None, :]
                + grid[x0 + 1][:, x0 + 1] * fx[None, :])
        noise += (row * (1 - fx)[:, None] + row2 * fx[:, None]) / freq
    xs = np.linspace(0, 4 * np.pi, size)
    stripes = np.sin(xs[None, :] + noise * 12.0) * 0.5 + 0.5
    base_arr = np.asarray(base, np.float64)
    vein_arr = np.asarray(vein, np.float64)
    img = (stripes[..., None] * base_arr
           + (1 - stripes[..., None]) * vein_arr)
    return Texture(np.clip(img, 0, 255).astype(np.uint8), name="marble")


def gradient(size: int = 64, start=(255, 60, 40),
             end=(30, 70, 255), axis: int = 1) -> Texture:
    """Linear two-color gradient along an axis (0 = vertical)."""
    t = np.linspace(0.0, 1.0, size)
    ramp = (np.outer(1 - t, np.asarray(start, np.float64))
            + np.outer(t, np.asarray(end, np.float64)))
    if axis == 1:
        img = np.broadcast_to(ramp[None, :, :], (size, size, 3))
    else:
        img = np.broadcast_to(ramp[:, None, :], (size, size, 3))
    return Texture(np.ascontiguousarray(img).astype(np.uint8),
                   name="gradient")


def planar_uv(vertices: np.ndarray, axis_u: int = 0,
              axis_v: int = 1) -> np.ndarray:
    """Planar-projected UVs normalised to the mesh's bounding box."""
    v = np.asarray(vertices, dtype=np.float64)
    if v.ndim != 2 or v.shape[1] != 3:
        raise DataFormatError(f"vertices must be (n, 3); got {v.shape}")
    uv = np.empty((len(v), 2), dtype=np.float32)
    for col, axis in enumerate((axis_u, axis_v)):
        lo = v[:, axis].min() if len(v) else 0.0
        hi = v[:, axis].max() if len(v) else 1.0
        span = (hi - lo) or 1.0
        uv[:, col] = ((v[:, axis] - lo) / span).astype(np.float32)
    return np.clip(uv, 0.0, 0.999999)
