"""The paper's ingest pipeline: PLY → Wavefront OBJ → data service.

Section 5: "The models were in PLY format, converted to Wavefront OBJ and
then imported into our data service."  :func:`ply_to_obj` is that step, with
the validation a production pipeline needs (geometry preserved bit-for-bit
up to text precision, face topology identical).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.data.meshes import Mesh
from repro.data.obj import read_obj, write_obj
from repro.data.ply import read_ply


@dataclass(frozen=True)
class ConversionReport:
    """What a conversion did — surfaced to the operator, logged by services."""

    source: str
    destination: str
    n_vertices: int
    n_triangles: int
    input_bytes: int
    output_bytes: int

    @property
    def expansion(self) -> float:
        """Text OBJ over binary PLY size ratio (typically ~1.5-2.5x)."""
        return self.output_bytes / max(1, self.input_bytes)


def ply_to_obj(ply_path: str | Path, obj_path: str | Path | None = None,
               verify: bool = True) -> ConversionReport:
    """Convert a PLY model to OBJ, optionally verifying the round trip.

    ``verify`` re-reads the OBJ and checks vertex positions (to float32 text
    precision) and exact face topology — the invariant the data service
    relies on when it advertises the model's polygon count to render
    services.
    """
    ply_path = Path(ply_path)
    if obj_path is None:
        obj_path = ply_path.with_suffix(".obj")
    obj_path = Path(obj_path)

    mesh = read_ply(ply_path)
    out_bytes = write_obj(mesh, obj_path)

    if verify:
        check = read_obj(obj_path)
        _verify_equivalent(mesh, check)

    return ConversionReport(
        source=str(ply_path),
        destination=str(obj_path),
        n_vertices=mesh.n_vertices,
        n_triangles=mesh.n_triangles,
        input_bytes=ply_path.stat().st_size,
        output_bytes=out_bytes,
    )


def _verify_equivalent(a: Mesh, b: Mesh, tol: float = 1e-4) -> None:
    if a.n_vertices != b.n_vertices or a.n_triangles != b.n_triangles:
        raise AssertionError(
            f"conversion changed topology: {a.n_vertices}v/{a.n_triangles}f "
            f"-> {b.n_vertices}v/{b.n_triangles}f"
        )
    if a.n_vertices:
        scale = float(np.abs(a.vertices).max()) or 1.0
        err = float(np.abs(a.vertices - b.vertices).max()) / scale
        if err > tol:
            raise AssertionError(f"conversion moved vertices (rel err {err:g})")
    if not np.array_equal(a.faces, b.faces):
        raise AssertionError("conversion permuted face indices")
