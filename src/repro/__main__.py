"""Command-line entry point: ``python -m repro <command>``.

Commands:

- ``info``        — package, testbed and model inventory;
- ``quickstart``  — run the README quickstart and save a frame;
- ``table2``      — regenerate the paper's Table 2 (PDA timings);
- ``tables34``    — regenerate Tables 3/4 (off-screen efficiency);
- ``table5``      — regenerate Table 5 (UDDI + bootstrap timings);
- ``dashboard``   — render the monitoring-plane text dashboard, from
  one or more snapshot JSONs (``--snapshot``, repeatable — several
  monitors merge into one federated view), from a freshly run live
  demo, or compare two snapshots (``--diff BEFORE AFTER``) for
  quantile regressions and alert churn;
- ``lint``        — run ``ravelint``, the project's AST-based invariant
  checker (determinism, metric registry, kind vocabularies, protocol
  symmetry, ``__all__`` drift); see ``docs/ANALYSIS.md``.

The full per-table/per-figure harness lives in ``benchmarks/`` (run with
``pytest benchmarks/ --benchmark-only``); these subcommands are the quick
interactive versions.
"""

from __future__ import annotations

import argparse
import sys


def cmd_info(args) -> int:
    import repro
    from repro.data.generators import MODEL_REGISTRY, PAPER_TRIANGLES
    from repro.hardware.profiles import TESTBED

    print(f"RAVE reproduction v{repro.__version__}")
    print("\ntestbed machines:")
    for name, profile in sorted(TESTBED.items()):
        rate = (f"{profile.polygon_rate / 1e6:.1f}M polys/s"
                if profile.can_render else "thin client")
        print(f"  {name:<10} {rate:<18} {profile.description}")
    print("\nbenchmark models (paper polygon budgets):")
    for name in sorted(MODEL_REGISTRY):
        print(f"  {name:<15} {PAPER_TRIANGLES[name]:>12,} triangles")
    return 0


def cmd_quickstart(args) -> int:
    from repro import build_testbed
    from repro.data import galleon

    tb = build_testbed()
    tb.publish_model("demo", galleon(20_000).normalized())
    rs = tb.render_service("centrino")
    rsession, boot = rs.create_render_session(tb.data_service, "demo")
    print(f"bootstrap: {boot.total_seconds:.1f} simulated seconds")
    client = tb.thin_client("cli-user")
    client.attach(rs, rsession.render_session_id)
    client.move_camera(position=(2.2, 1.4, 1.2))
    frame, timing = client.request_frame(200, 200)
    print(f"frame: {timing.fps:.1f} fps "
          f"(render {timing.render_seconds:.3f}s, "
          f"receipt {timing.image_receipt_seconds:.3f}s)")
    frame.save_ppm(args.output)
    print(f"saved {args.output}")
    return 0


def cmd_table2(args) -> int:
    from repro.data.generators import make_model
    from repro.testbed import build_testbed

    tb = build_testbed(render_hosts=("centrino",))
    paper = {"skeletal_hand": (2.9, 0.339), "skeleton": (1.6, 0.598)}
    print(f"{'model':<15} {'paper fps':>9} {'ours':>6} "
          f"{'paper total':>11} {'ours':>6}")
    for name in ("skeletal_hand", "skeleton"):
        mesh = make_model(name, paper_scale=True).normalized()
        tb.publish_model(name, mesh)
        rs = tb.render_service("centrino")
        rsession, _ = rs.create_render_session(tb.data_service, name)
        client = tb.thin_client(f"cli-{name}")
        client.attach(rs, rsession.render_session_id)
        client.move_camera(position=(0.4, 2.2, 1.0))
        _, t = client.request_frame(200, 200)
        p_fps, p_total = paper[name]
        print(f"{name:<15} {p_fps:>9.1f} {t.fps:>6.2f} "
              f"{p_total:>11.3f} {t.total_latency:>6.3f}")
    return 0


def cmd_tables34(args) -> int:
    from repro.hardware.profiles import get_profile
    from repro.render.engine import RenderEngine

    datasets = {"Elle (50k)": 50_000, "Galleon (5.5k)": 5_500}
    machines = ("centrino", "athlon", "v880z")
    for pixels, label in ((400 * 400, "Table 3 (400x400)"),
                          (200 * 200, "Table 4 (200x200, seq/int)")):
        print(f"\n{label}")
        header = f"{'dataset':<16}" + "".join(f"{m:>18}" for m in machines)
        print(header)
        for ds_label, polys in datasets.items():
            cells = [f"{ds_label:<16}"]
            for machine in machines:
                engine = RenderEngine(get_profile(machine))
                if pixels == 400 * 400:
                    cells.append(
                        f"{engine.offscreen_efficiency(polys, pixels):>17.0%} ")
                else:
                    seq = engine.offscreen_efficiency(polys, pixels, 1)
                    inter = engine.offscreen_efficiency(polys, pixels, 4)
                    cells.append(f"{seq:>8.0%}/{inter:<8.0%}")
            print("".join(cells))
    return 0


def cmd_table5(args) -> int:
    from repro.data.generators import make_model
    from repro.testbed import build_testbed

    tb = build_testbed(render_hosts=("centrino", "athlon"))
    client = tb.uddi_client("centrino")
    full = client.full_bootstrap("RAVE project", "RaveRenderService")
    warm = client.scan_access_points("RAVE project", "RaveRenderService")
    print(f"UDDI warm scan: {warm.elapsed_seconds:.2f}s "
          "(paper 0.70-0.73)")
    print(f"UDDI full bootstrap: {full.elapsed_seconds:.2f}s "
          "(paper 4.2-4.8)")
    for name, paper in (("galleon", 10.5), ("skeletal_hand", 68.2)):
        tb.publish_model(name,
                         make_model(name, paper_scale=True).normalized())
        rs = tb.render_service("centrino")
        _, timing = rs.create_render_session(tb.data_service, name)
        print(f"bootstrap {name}: {timing.total_seconds:.1f}s "
              f"(paper {paper})")
    return 0


def cmd_dashboard(args) -> int:
    import json

    from repro.obs.dashboard import (
        diff_snapshots,
        merge_monitor_snapshots,
        render_dashboard,
        render_diff,
    )

    def load(path: str) -> dict:
        with open(path) as fh:
            return json.load(fh)

    if args.diff:
        before, after = (load(path) for path in args.diff)
        diff = diff_snapshots(before, after, threshold=args.threshold)
        print(render_diff(diff), end="")
        # a flagged regression is a nonzero exit so CI can gate on it
        return 1 if diff["regressed"] else 0

    if args.snapshot:
        snaps = [load(path) for path in args.snapshot]
        merged = snaps[0] if len(snaps) == 1 \
            else merge_monitor_snapshots(snaps)
        print(render_dashboard(merged), end="")
        return 0

    # Live demo: a monitored testbed under load for a few simulated seconds.
    from repro import obs
    from repro.data import galleon
    from repro.testbed import build_testbed

    tb = build_testbed(monitor_host="registry-host")
    with obs.observed(clock=tb.clock):
        tb.publish_model("demo", galleon(20_000).normalized())
        rs = tb.render_service("centrino")
        rsession, _ = rs.create_render_session(tb.data_service, "demo")
        client = tb.thin_client("dash-user")
        client.attach(rs, rsession.render_session_id)
        client.move_camera(position=(2.2, 1.4, 1.2))
        deadline = tb.clock.now + float(args.seconds)
        while tb.clock.now < deadline:
            client.request_frame(200, 200)
            tb.network.sim.run_until(min(deadline, tb.clock.now + 0.5))
        print(render_dashboard(tb.monitor.snapshot()), end="")
    return 0


def cmd_lint(args) -> int:
    from repro.analysis.cli import cmd_lint as run

    return run(args)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="RAVE (SC 2004) reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="package and testbed inventory")
    quick = sub.add_parser("quickstart", help="run the README quickstart")
    quick.add_argument("--output", default="rave_quickstart.ppm",
                       help="where to save the rendered frame")
    sub.add_parser("table2", help="regenerate Table 2 (PDA timings)")
    sub.add_parser("tables34", help="regenerate Tables 3/4 (off-screen)")
    sub.add_parser("table5", help="regenerate Table 5 (UDDI/bootstrap)")
    dash = sub.add_parser("dashboard",
                          help="render the monitoring text dashboard")
    dash.add_argument("--snapshot", action="append", default=None,
                      help="JSON snapshot to render (monitor snapshot or "
                           "observability snapshot with a 'monitor' key); "
                           "repeat the flag to merge several monitors into "
                           "one federated view; omit to run a live demo")
    dash.add_argument("--diff", nargs=2, metavar=("BEFORE", "AFTER"),
                      default=None,
                      help="compare two snapshots instead of rendering: "
                           "report quantile regressions and alert churn, "
                           "exit 1 when a regression is flagged")
    dash.add_argument("--threshold", type=float, default=0.1,
                      help="quantile delta (seconds) counted as a "
                           "regression by --diff (default 0.1)")
    dash.add_argument("--seconds", type=float, default=6.0,
                      help="simulated seconds for the live demo (default 6)")
    lint = sub.add_parser("lint",
                          help="run ravelint static invariant checks")
    from repro.analysis.cli import add_lint_arguments
    add_lint_arguments(lint)
    args = parser.parse_args(argv)
    handler = {
        "info": cmd_info,
        "quickstart": cmd_quickstart,
        "table2": cmd_table2,
        "tables34": cmd_tables34,
        "table5": cmd_table5,
        "dashboard": cmd_dashboard,
        "lint": cmd_lint,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
