"""Message channels over the simulated network.

RAVE's two-plane design (paper §4.3): "we only use Grid/Web services for
initial service discovery (via UDDI), status interrogation and subsequent
subscription.  We then back off from SOAP and use direct socket
communication to send binary information."

:class:`SoapChannel` and :class:`BinaryChannel` implement the two planes
over the same :class:`~repro.network.simnet.Network`.  Each ``send`` (a)
produces the actual bytes, (b) advances simulated time by marshalling CPU +
transfer + demarshalling CPU, and (c) returns both the decoded value and a
:class:`ChannelTiming` breakdown — the raw material of Tables 2 and 5 and
the SOAP-vs-binary ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetworkError
from repro.network.marshalling import BinaryMarshaller, IntrospectionMarshaller
from repro.network.simnet import Network


@dataclass(frozen=True)
class ChannelTiming:
    """Where the time of one message went."""

    marshal_seconds: float
    transfer_seconds: float
    demarshal_seconds: float
    nbytes: int

    @property
    def total_seconds(self) -> float:
        return (self.marshal_seconds + self.transfer_seconds
                + self.demarshal_seconds)


class Channel:
    """Base channel between two hosts; concrete classes choose the codec."""

    def __init__(self, network: Network, src: str, dst: str) -> None:
        for h in (src, dst):
            if h not in network.hosts:
                raise NetworkError(f"unknown host {h!r}")
        self.network = network
        self.src = src
        self.dst = dst
        self.messages_sent = 0
        self.bytes_sent = 0

    def _encode(self, value) -> tuple[bytes, float]:
        raise NotImplementedError

    def _decode(self, data: bytes) -> tuple[object, float]:
        raise NotImplementedError

    def send(self, value, advance_clock: bool = True
             ) -> tuple[object, ChannelTiming]:
        """Encode, transfer and decode one message; returns (value, timing)."""
        data, marshal_cpu = self._encode(value)
        transfer = self.network.transfer_time(self.src, self.dst, len(data))
        decoded, demarshal_cpu = self._decode(data)
        timing = ChannelTiming(marshal_seconds=marshal_cpu,
                               transfer_seconds=transfer,
                               demarshal_seconds=demarshal_cpu,
                               nbytes=len(data))
        if advance_clock:
            self.network.sim.clock.advance(timing.total_seconds)
        self.messages_sent += 1
        self.bytes_sent += len(data)
        return decoded, timing

    def _reversed(self) -> Channel:
        """The response-direction channel with identical configuration."""
        raise NotImplementedError

    def request(self, value, response, advance_clock: bool = True
                ) -> tuple[object, ChannelTiming]:
        """A round trip: send ``value``, get ``response`` back.

        Returns the decoded response and the *combined* timing.
        """
        _, t_req = self.send(value, advance_clock=advance_clock)
        back = self._reversed()
        decoded, t_resp = back.send(response, advance_clock=advance_clock)
        return decoded, ChannelTiming(
            marshal_seconds=t_req.marshal_seconds + t_resp.marshal_seconds,
            transfer_seconds=t_req.transfer_seconds + t_resp.transfer_seconds,
            demarshal_seconds=(t_req.demarshal_seconds
                               + t_resp.demarshal_seconds),
            nbytes=t_req.nbytes + t_resp.nbytes,
        )


class BinaryChannel(Channel):
    """The data plane: framed binary messages, fast buffer marshalling.

    ``introspective=True`` switches to the reflective marshaller — the
    configuration RAVE actually shipped with at publication (its stated
    bootstrap bottleneck); the default fast path is the "directly sending a
    native stream" alternative the paper says it will move to.
    """

    def __init__(self, network: Network, src: str, dst: str,
                 cpu_factor: float = 1.0, introspective: bool = False) -> None:
        super().__init__(network, src, dst)
        self.cpu_factor = cpu_factor
        self.introspective = introspective
        if introspective:
            self.marshaller = IntrospectionMarshaller(cpu_factor=cpu_factor)
        else:
            self.marshaller = BinaryMarshaller(cpu_factor=cpu_factor)

    def _reversed(self) -> BinaryChannel:
        return BinaryChannel(self.network, self.dst, self.src,
                             cpu_factor=self.cpu_factor,
                             introspective=self.introspective)

    def _encode(self, value) -> tuple[bytes, float]:
        from repro.services.protocol import frame_message

        result = self.marshaller.marshal(value)
        return frame_message(result.data), result.cpu_seconds

    def _decode(self, data: bytes) -> tuple[object, float]:
        from repro.services.protocol import unframe_message

        _, body = unframe_message(data)
        return self.marshaller.demarshal(body)


class SoapChannel(Channel):
    """The control plane: SOAP envelopes (XML + base64 payload expansion).

    Messages must be ``(operation, body_dict)`` tuples or plain dicts (sent
    as operation ``"call"``).
    """

    def __init__(self, network: Network, src: str, dst: str,
                 cpu_factor: float = 1.0) -> None:
        super().__init__(network, src, dst)
        self.cpu_factor = cpu_factor

    def _reversed(self) -> SoapChannel:
        return SoapChannel(self.network, self.dst, self.src,
                           cpu_factor=self.cpu_factor)

    def _split(self, value) -> tuple[str, dict]:
        if isinstance(value, tuple) and len(value) == 2:
            return str(value[0]), dict(value[1])
        if isinstance(value, dict):
            return "call", value
        raise NetworkError(
            "SoapChannel payloads must be (operation, body) or dict")

    def _encode(self, value) -> tuple[bytes, float]:
        from repro.services.soap import soap_cpu_seconds, soap_encode

        operation, body = self._split(value)
        data = soap_encode(operation, body)
        return data, soap_cpu_seconds(len(data), self.cpu_factor)

    def _decode(self, data: bytes) -> tuple[object, float]:
        from repro.services.soap import soap_cpu_seconds, soap_decode

        envelope = soap_decode(data)
        return ((envelope.operation, envelope.body),
                soap_cpu_seconds(len(data), self.cpu_factor))
