"""Deterministic fault injection for the simulated network.

Real grid deployments treat node loss as the common case: machines crash,
links flap, WAN latency spikes, and whole segments partition.  The paper's
testbed never exercised those paths, but its future work ("a fail-safe
mechanism") and the surrounding literature (Bethel et al. on WAN
degradation; Rodrigues et al. on node-failure handling) make them the gap
between a lab reproduction and a production system.

:class:`FaultInjector` drives every failure mode the rest of the
fault-tolerance stack must survive:

- **host crashes** — the host stops routing, its services stop answering;
- **link flaps** — ``Link.up`` toggles on a schedule;
- **latency spikes** — per-link additive latency for a time window;
- **packet/transfer loss** — per-link-pair or default loss probability,
  rolled from a seeded RNG inside :meth:`Network.send`;
- **partitions** — every link crossing a host-set cut goes down at once.

All scheduling uses the shared :class:`~repro.network.clock.Simulator`, and
all randomness comes from one seeded ``random.Random``: the same seed and
schedule always produce the same fault sequence, which is what makes the
chaos tests reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import NetworkError
from repro.network.simnet import Link, Network
from repro.obs import active as _obs
from repro.obs.vocab import EVENT_FAULT_PREFIX


def _pair_key(a: str, b: str) -> tuple[str, str]:
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in the injector's log."""

    time: float
    kind: str            # "crash" | "restart" | "link-down" | "link-up" |
                         # "latency-spike" | "latency-clear" |
                         # "partition" | "heal" | "loss"
    detail: str


@dataclass
class _Partition:
    """Bookkeeping for one active partition (the links *we* downed)."""

    name: str
    severed: list[tuple[str, str]] = field(default_factory=list)


class FaultInjector:
    """Scripted, seeded fault source attached to one :class:`Network`.

    Immediate methods (``crash_host`` …) act now; ``schedule_*`` variants
    register simulator events, optionally with automatic recovery after a
    duration.  The injector registers itself as ``network.fault_injector``
    so :meth:`Network.transfer_time` and :meth:`Network.send` consult it
    for latency penalties and transfer loss.
    """

    def __init__(self, network: Network, seed: int = 0) -> None:
        self.network = network
        self.rng = random.Random(seed)
        self.log: list[FaultEvent] = []
        #: additive latency (seconds) per link key while a spike is active
        self._latency_spikes: dict[tuple[str, str], float] = {}
        #: loss probability per (src, dst) host pair, plus a default
        self._loss: dict[tuple[str, str], float] = {}
        self.default_loss: float = 0.0
        self._partitions: dict[str, _Partition] = {}
        self.transfers_lost: int = 0
        network.fault_injector = self

    # -- hooks consulted by the network -----------------------------------------

    def latency_penalty(self, link: Link) -> float:
        """Extra seconds of latency currently injected on ``link``."""
        return self._latency_spikes.get(link.key, 0.0)

    def roll_loss(self, src: str, dst: str) -> bool:
        """Decide (from the seeded RNG) whether one transfer is lost."""
        p = self._loss.get(_pair_key(src, dst), self.default_loss)
        if p <= 0.0:
            return False
        lost = self.rng.random() < p
        if lost:
            self.transfers_lost += 1
            self._record("loss", f"{src}->{dst}")
        return lost

    # -- immediate faults --------------------------------------------------------

    def crash_host(self, name: str) -> None:
        """Take a machine down: it routes nothing and answers nothing.

        When a flight recorder is active, a post-mortem dump is
        *requested* with a grace period rather than taken immediately —
        the lease transitions and recovery actions the crash provokes
        belong in the dump, and if the heartbeat path produces its own
        death dump first, the deferred one stands down (exactly one dump
        per failure).
        """
        self.network.set_host_up(name, False)
        self._record("crash", name)
        obs = _obs()
        if obs.enabled:
            obs.recorder.request_dump(f"crash:{name}", self.network.sim)

    def restart_host(self, name: str) -> None:
        self.network.set_host_up(name, True)
        self._record("restart", name)

    def host_is_up(self, name: str) -> bool:
        return self.network.host_is_up(name)

    def set_link(self, a: str, b: str, up: bool) -> None:
        self.network.set_link_up(a, b, up)
        self._record("link-up" if up else "link-down", f"{a}<->{b}")

    def set_loss(self, a: str, b: str, probability: float) -> None:
        """Per-transfer loss probability between two hosts (either way)."""
        if not 0.0 <= probability <= 1.0:
            raise NetworkError("loss probability must be in [0, 1]")
        self._loss[_pair_key(a, b)] = probability

    def set_default_loss(self, probability: float) -> None:
        """Loss probability applied to every transfer without an override."""
        if not 0.0 <= probability <= 1.0:
            raise NetworkError("loss probability must be in [0, 1]")
        self.default_loss = probability

    def latency_spike(self, a: str, b: str, extra_s: float) -> None:
        """Add ``extra_s`` seconds of latency to the a<->b link until cleared."""
        if extra_s < 0:
            raise NetworkError("latency spike must be non-negative")
        link = self.network.link_between(a, b)
        self._latency_spikes[link.key] = extra_s
        self._record("latency-spike", f"{a}<->{b} +{extra_s:g}s")

    def clear_latency_spike(self, a: str, b: str) -> None:
        link = self.network.link_between(a, b)
        if self._latency_spikes.pop(link.key, None) is not None:
            self._record("latency-clear", f"{a}<->{b}")

    def partition(self, group: set[str] | list[str],
                  name: str = "partition") -> list[tuple[str, str]]:
        """Sever every up link between ``group`` and the rest of the network.

        Returns the severed link endpoints; :meth:`heal` restores exactly
        those links (links downed independently stay down).
        """
        if name in self._partitions:
            raise NetworkError(f"partition {name!r} already active")
        group = set(group)
        unknown = group - set(self.network.hosts)
        if unknown:
            raise NetworkError(f"unknown hosts in partition: {sorted(unknown)}")
        part = _Partition(name=name)
        for link in self.network._links.values():
            if link.up and (link.a in group) != (link.b in group):
                self.network.set_link_up(link.a, link.b, False)
                part.severed.append((link.a, link.b))
        self._partitions[name] = part
        self._record("partition",
                     f"{name}: {sorted(group)} severed {len(part.severed)}")
        return list(part.severed)

    def heal(self, name: str = "partition") -> None:
        """Restore the links severed by the named partition."""
        part = self._partitions.pop(name, None)
        if part is None:
            raise NetworkError(f"no active partition {name!r}")
        for a, b in part.severed:
            self.network.set_link_up(a, b, True)
        self._record("heal", name)

    # -- scripted schedules -------------------------------------------------------

    def schedule_crash(self, at: float, host: str,
                       restart_after: float | None = None) -> None:
        """Crash ``host`` at simulated time ``at``; optionally auto-restart."""
        self.network.sim.schedule_at(at, lambda: self.crash_host(host))
        if restart_after is not None:
            self.network.sim.schedule_at(
                at + restart_after, lambda: self.restart_host(host))

    def schedule_flap(self, at: float, a: str, b: str,
                      down_for: float) -> None:
        """Take the a<->b link down at ``at`` and back up ``down_for`` later."""
        self.network.sim.schedule_at(at, lambda: self.set_link(a, b, False))
        self.network.sim.schedule_at(
            at + down_for, lambda: self.set_link(a, b, True))

    def schedule_latency_spike(self, at: float, a: str, b: str,
                               extra_s: float, duration: float) -> None:
        self.network.sim.schedule_at(
            at, lambda: self.latency_spike(a, b, extra_s))
        self.network.sim.schedule_at(
            at + duration, lambda: self.clear_latency_spike(a, b))

    def schedule_partition(self, at: float, group: set[str] | list[str],
                           heal_after: float,
                           name: str = "partition") -> None:
        self.network.sim.schedule_at(
            at, lambda: self.partition(group, name=name))
        self.network.sim.schedule_at(
            at + heal_after, lambda: self.heal(name))

    # -- bookkeeping -------------------------------------------------------------

    def _record(self, kind: str, detail: str) -> None:
        self.log.append(FaultEvent(time=self.network.sim.now,
                                   kind=kind, detail=detail))
        obs = _obs()
        if obs.enabled:
            obs.recorder.note(EVENT_FAULT_PREFIX + kind,
                              time=self.network.sim.now,
                              detail=detail)

    def events(self, kind: str | None = None) -> list[FaultEvent]:
        if kind is None:
            return list(self.log)
        return [e for e in self.log if e.kind == kind]

    def __repr__(self) -> str:
        return (f"FaultInjector(events={len(self.log)}, "
                f"lost={self.transfers_lost}, "
                f"partitions={sorted(self._partitions)})")
