"""Marshalling: wire codecs and their CPU cost models.

Two things live here, deliberately together:

1. a real, pickle-free binary codec (:func:`encode_value` /
   :func:`decode_value`) for the wire dicts produced by the scene graph and
   services — type-tagged, length-prefixed, numpy arrays packed raw;

2. the *cost models* for the two marshalling strategies the paper compares:

   - :class:`IntrospectionMarshaller` — the Java-style reflective walk
     ("each node in the scene graph is examined for implemented
     interfaces...").  The paper measures this at roughly 2.9 simulated
     seconds per megabyte end-to-end (Table 5: 10.5 s for a 0.3 MB model vs
     68.2 s for 20 MB, both over 100 Mbit ethernet — CPU-bound, not
     network-bound), and names it the bootstrap bottleneck.
   - :class:`BinaryMarshaller` — the direct buffer path ("directly sending
     a native Java3D stream" / the C++ client's pointer cast), orders of
     magnitude cheaper per byte.

Both produce identical *bytes*; they differ in simulated CPU seconds.  The
ablation benchmark regenerates the paper's bottleneck claim from these two
models.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import MarshallingError

# --------------------------------------------------------------------------
# binary value codec
# --------------------------------------------------------------------------

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_FLOAT = b"f"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_ARRAY = b"a"
_TAG_LIST = b"l"
_TAG_DICT = b"d"

_MAX_DEPTH = 32


def _encode_into(out: list[bytes], value, depth: int) -> None:
    if depth > _MAX_DEPTH:
        raise MarshallingError("value nesting exceeds maximum depth")
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, (int, np.integer)):
        out.append(_TAG_INT + struct.pack("<q", int(value)))
    elif isinstance(value, (float, np.floating)):
        out.append(_TAG_FLOAT + struct.pack("<d", float(value)))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_TAG_STR + struct.pack("<I", len(raw)) + raw)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out.append(_TAG_BYTES + struct.pack("<I", len(raw)) + raw)
    elif isinstance(value, np.ndarray):
        # ascontiguousarray promotes 0-d to 1-d; reshape restores the rank
        arr = np.ascontiguousarray(value).reshape(value.shape)
        dt = arr.dtype.str.encode("ascii")
        out.append(_TAG_ARRAY + struct.pack("<B", len(dt)) + dt)
        out.append(struct.pack("<B", arr.ndim))
        out.append(struct.pack(f"<{arr.ndim}q", *arr.shape))
        raw = arr.tobytes()
        out.append(struct.pack("<Q", len(raw)))
        out.append(raw)
    elif isinstance(value, (list, tuple)):
        out.append(_TAG_LIST + struct.pack("<I", len(value)))
        for item in value:
            _encode_into(out, item, depth + 1)
    elif isinstance(value, dict):
        out.append(_TAG_DICT + struct.pack("<I", len(value)))
        for key, item in value.items():
            if not isinstance(key, str):
                raise MarshallingError(f"dict keys must be str; got {key!r}")
            raw = key.encode("utf-8")
            out.append(struct.pack("<I", len(raw)) + raw)
            _encode_into(out, item, depth + 1)
    else:
        raise MarshallingError(
            f"cannot marshal value of type {type(value).__name__}")


def encode_value(value) -> bytes:
    """Encode a wire value (primitives / str / bytes / ndarray / list / dict)."""
    out: list[bytes] = []
    _encode_into(out, value, 0)
    return b"".join(out)


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise MarshallingError("truncated wire data")
        chunk = self.data[self.pos:self.pos + n]
        self.pos += n
        return chunk

    def unpack(self, fmt: str):
        size = struct.calcsize(fmt)
        return struct.unpack(fmt, self.take(size))


def _decode_from(r: _Reader, depth: int):
    if depth > _MAX_DEPTH:
        raise MarshallingError("wire data nesting exceeds maximum depth")
    tag = r.take(1)
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_INT:
        return r.unpack("<q")[0]
    if tag == _TAG_FLOAT:
        return r.unpack("<d")[0]
    if tag == _TAG_STR:
        (n,) = r.unpack("<I")
        return r.take(n).decode("utf-8")
    if tag == _TAG_BYTES:
        (n,) = r.unpack("<I")
        return r.take(n)
    if tag == _TAG_ARRAY:
        (dt_len,) = r.unpack("<B")
        dt = np.dtype(r.take(dt_len).decode("ascii"))
        (ndim,) = r.unpack("<B")
        shape = r.unpack(f"<{ndim}q") if ndim else ()
        (nbytes,) = r.unpack("<Q")
        expected = dt.itemsize * int(np.prod(shape)) if ndim else dt.itemsize
        if nbytes != expected:
            raise MarshallingError(
                f"array byte count {nbytes} does not match shape {shape}")
        raw = r.take(nbytes)
        return np.frombuffer(raw, dtype=dt).reshape(shape).copy()
    if tag == _TAG_LIST:
        (n,) = r.unpack("<I")
        return [_decode_from(r, depth + 1) for _ in range(n)]
    if tag == _TAG_DICT:
        (n,) = r.unpack("<I")
        out = {}
        for _ in range(n):
            (klen,) = r.unpack("<I")
            key = r.take(klen).decode("utf-8")
            out[key] = _decode_from(r, depth + 1)
        return out
    raise MarshallingError(f"unknown wire tag {tag!r}")


def decode_value(data: bytes):
    """Decode bytes produced by :func:`encode_value`."""
    r = _Reader(data)
    value = _decode_from(r, 0)
    if r.pos != len(data):
        raise MarshallingError(
            f"{len(data) - r.pos} trailing bytes after wire value")
    return value


# --------------------------------------------------------------------------
# field counting (the introspection cost driver)
# --------------------------------------------------------------------------


def count_fields(value) -> int:
    """Number of leaf fields a reflective walk would visit."""
    if isinstance(value, dict):
        return sum(count_fields(v) for v in value.values()) or 1
    if isinstance(value, (list, tuple)):
        return sum(count_fields(v) for v in value) or 1
    return 1


def payload_nbytes(value) -> int:
    """Bulk payload size (arrays/strings/bytes) of a wire value."""
    if isinstance(value, np.ndarray):
        return value.nbytes
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return len(value)
    if isinstance(value, dict):
        return sum(payload_nbytes(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return sum(payload_nbytes(v) for v in value)
    return 8


# --------------------------------------------------------------------------
# marshaller cost models
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class MarshalResult:
    """Bytes on the wire plus the simulated CPU cost of producing them."""

    data: bytes
    cpu_seconds: float
    n_fields: int

    @property
    def nbytes(self) -> int:
        return len(self.data)


class BinaryMarshaller:
    """The fast path: direct buffer streaming.

    Calibration: a 2004-era JVM/CPU streams contiguous buffers at roughly
    60 MB/s (the C++ PDA client "directly cast" path is effectively memcpy);
    ``cpu_factor`` scales with the machine profile (1.0 = the Centrino
    reference).
    """

    SECONDS_PER_BYTE = 1.0 / 60e6
    SECONDS_PER_FIELD = 2e-6

    def __init__(self, cpu_factor: float = 1.0) -> None:
        if cpu_factor <= 0:
            raise ValueError("cpu_factor must be positive")
        self.cpu_factor = cpu_factor

    def marshal(self, value) -> MarshalResult:
        data = encode_value(value)
        n_fields = count_fields(value)
        cpu = (len(data) * self.SECONDS_PER_BYTE
               + n_fields * self.SECONDS_PER_FIELD) / self.cpu_factor
        return MarshalResult(data=data, cpu_seconds=cpu, n_fields=n_fields)

    def demarshal(self, data: bytes) -> tuple[object, float]:
        """Returns (value, simulated cpu seconds)."""
        value = decode_value(data)
        cpu = (len(data) * self.SECONDS_PER_BYTE * 0.8
               + count_fields(value) * self.SECONDS_PER_FIELD) / self.cpu_factor
        return value, cpu


class IntrospectionMarshaller:
    """The Java-reflection path RAVE used at publication time.

    Cost structure (per the paper's own analysis of its Table 5 numbers):

    - every node is checked against the full interface catalogue
      (``SECONDS_PER_INTERFACE_CHECK`` each);
    - every leaf field costs a reflective accessor call
      (``SECONDS_PER_FIELD``);
    - bulk data is copied element-wise through boxing at
      ``SECONDS_PER_BYTE`` — the dominant term.  Calibration: Table 5's two
      bootstrap points (10.5 s at ~0.1 MB in-memory payload, 68.2 s at
      ~15.1 MB) give a ~3.7 s/MB end-to-end CPU slope over 100 Mbit
      ethernet.  In the default testbed the data service marshals on the
      dual-Xeon (cpu_factor 1.5) and the render service demarshals on the
      Centrino reference, so 3.18 s/MB marshal + 1.59 s/MB demarshal (both
      at reference speed) + store-and-forward wire time reproduces both
      measured points.
    """

    SECONDS_PER_BYTE = 3.18 / 1e6
    DEMARSHAL_SECONDS_PER_BYTE = 1.59 / 1e6
    SECONDS_PER_FIELD = 50e-6
    SECONDS_PER_INTERFACE_CHECK = 5e-6

    def __init__(self, cpu_factor: float = 1.0,
                 n_interfaces: int | None = None) -> None:
        if cpu_factor <= 0:
            raise ValueError("cpu_factor must be positive")
        self.cpu_factor = cpu_factor
        if n_interfaces is None:
            from repro.scenegraph.interfaces import INTERFACES
            n_interfaces = len(INTERFACES)
        self.n_interfaces = n_interfaces

    def marshal(self, value) -> MarshalResult:
        data = encode_value(value)
        n_fields = count_fields(value)
        nbytes = payload_nbytes(value)
        cpu = (
            nbytes * self.SECONDS_PER_BYTE
            + n_fields * self.SECONDS_PER_FIELD
            + n_fields * self.n_interfaces * self.SECONDS_PER_INTERFACE_CHECK
        ) / self.cpu_factor
        return MarshalResult(data=data, cpu_seconds=cpu, n_fields=n_fields)

    def demarshal(self, data: bytes) -> tuple[object, float]:
        value = decode_value(data)
        n_fields = count_fields(value)
        cpu = (
            payload_nbytes(value) * self.DEMARSHAL_SECONDS_PER_BYTE
            + n_fields * self.SECONDS_PER_FIELD
        ) / self.cpu_factor
        return value, cpu
