"""Simulated time and discrete-event scheduling.

All paper-facing timings (Tables 2 and 5, the Figure 5 latency numbers) are
reported in *simulated seconds* produced by :class:`SimClock`.  Wall-clock
time never leaks into the results: the simulation is deterministic and
reproducible, which is what lets the benchmark harness regenerate the
paper's tables on any machine.

:class:`Simulator` is a minimal priority-queue discrete-event engine.  It is
deliberately simple — the network model computes most transfer times
analytically and only uses events where ordering matters (overlapping a
service bootstrap with scene updates, interleaved off-screen rendering,
workload-migration triggers).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from collections.abc import Callable
from typing import Any


class SimClock:
    """Monotonic simulated-time source, in seconds.

    The clock only moves forward; :meth:`advance` by a negative amount is a
    programming error and raises ``ValueError``.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, dt: float) -> float:
        """Move the clock forward by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt!r}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock forward to absolute time ``t`` (no-op if in past)."""
        if t > self._now:
            self._now = t
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f})"


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: daemon events (recurring heartbeat/monitor ticks) never keep
    #: :meth:`Simulator.run` alive on their own
    daemon: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event's callback from running."""
        self._event.cancelled = True


class Simulator:
    """Priority-queue discrete-event simulator driving a :class:`SimClock`.

    Events scheduled for the same instant run in scheduling order (FIFO),
    which keeps multi-service interactions deterministic.
    """

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._queue: list[_Event] = []
        self._seq = itertools.count()
        self._processed = 0
        self._nondaemon_pending = 0

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], Any],
                 daemon: bool = False) -> EventHandle:
        """Run ``callback`` ``delay`` simulated seconds from now.

        ``daemon`` events (recurring heartbeat polls, monitor scrape ticks)
        execute normally but never keep :meth:`run` alive: once only daemon
        events remain queued, :meth:`run` returns instead of chasing the
        self-rescheduling tick forever.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay!r})")
        return self.schedule_at(self.clock.now + delay, callback, daemon=daemon)

    def schedule_at(self, time: float, callback: Callable[[], Any],
                    daemon: bool = False) -> EventHandle:
        """Run ``callback`` at absolute simulated time ``time``."""
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule at t={time!r}, clock already at {self.clock.now!r}"
            )
        event = _Event(time=float(time), seq=next(self._seq), callback=callback,
                       daemon=daemon)
        heapq.heappush(self._queue, event)
        if not daemon:
            self._nondaemon_pending += 1
        return EventHandle(event)

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if not event.daemon:
                self._nondaemon_pending -= 1
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.callback()
            self._processed += 1
            return True
        return False

    def run(self, max_events: int = 1_000_000) -> int:
        """Run until no non-daemon events remain; returns events executed.

        Daemon ticks scheduled before the last non-daemon event still run
        (they may themselves schedule non-daemon work, e.g. a monitor
        scrape putting bytes on the wire, which then drains too).
        ``max_events`` bounds runaway self-rescheduling loops.
        """
        executed = 0
        while executed < max_events and self._nondaemon_pending > 0:
            if not self.step():
                break
            executed += 1
        if executed >= max_events and self._nondaemon_pending > 0:
            raise RuntimeError(f"simulation did not drain within {max_events} events")
        return executed

    def run_until(self, t: float, max_events: int = 1_000_000) -> int:
        """Run every event scheduled at or before ``t``; advance clock to ``t``."""
        executed = 0
        while self._queue and executed < max_events:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > t:
                break
            self.step()
            executed += 1
        if executed >= max_events and self._queue and self._queue[0].time <= t:
            raise RuntimeError(f"simulation did not drain within {max_events} events")
        self.clock.advance_to(t)
        return executed
