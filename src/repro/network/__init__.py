"""Simulated network substrate.

The paper ran over 100 Mbit switched ethernet and an 11 Mbit/s 802.11b
wireless LAN.  This subpackage provides a deterministic, discrete-event
replacement for that infrastructure:

- :mod:`repro.network.clock` — simulated time source and event scheduler;
- :mod:`repro.network.simnet` — hosts, links (wired and shared wireless),
  routing, unicast/multicast transfers with per-transfer accounting;
- :mod:`repro.network.transport` — message channels: raw binary sockets vs
  SOAP-over-HTTP, including marshalling cost models;
- :mod:`repro.network.faults` — deterministic fault injection: host
  crashes, link flaps, latency spikes, transfer loss, partitions;
- :mod:`repro.network.marshalling` — the Java-style introspection marshaller
  the paper identifies as its bootstrap bottleneck, and the fast binary
  path RAVE uses after "backing off from SOAP".
"""

from repro.network.clock import SimClock, Simulator
from repro.network.faults import FaultEvent, FaultInjector
from repro.network.simnet import Host, Link, Network, TransferRecord, WirelessCell
from repro.network.transport import BinaryChannel, Channel, SoapChannel
from repro.network.marshalling import (
    BinaryMarshaller,
    IntrospectionMarshaller,
    MarshalResult,
)

__all__ = [
    "SimClock",
    "FaultInjector",
    "FaultEvent",
    "Simulator",
    "Host",
    "Link",
    "Network",
    "TransferRecord",
    "WirelessCell",
    "Channel",
    "BinaryChannel",
    "SoapChannel",
    "BinaryMarshaller",
    "IntrospectionMarshaller",
    "MarshalResult",
]
