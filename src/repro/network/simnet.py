"""Discrete-event network simulator.

Replaces the paper's physical testbed network: 100 Mbit switched ethernet
between the workstations/servers, and an 11 Mbit/s 802.11b wireless cell for
the PDA whose *effective* bandwidth depends on signal quality and sharing
("bandwidth is shared between other network users, and is proportional to
signal quality").

Model choices (documented limitations, adequate for the paper's shapes):

- store-and-forward per link; transfer time on a link is
  ``latency + bytes * 8 / effective_bandwidth``;
- contention uses the link's in-flight transfer count *at transfer start*
  (fluid-flow rate re-negotiation mid-transfer is not modelled);
- 802.11b MAC efficiency defaults to 0.44, matching both real 11 Mbit
  deployments (~4.8 Mbit/s goodput) and the paper's own measurement
  (120 kB frame in ~0.2 s);
- multicast sends the payload once on shared upstream links and fans out
  per-receiver downstream (the data service's "bandwidth-saving" update
  distribution).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.errors import NetworkError
from repro.network.clock import Simulator
from repro.obs import active as _obs


@dataclass
class Host:
    """A machine on the network."""

    name: str
    #: optional machine-profile key (see repro.hardware.profiles)
    profile: str = ""
    #: False while the machine is crashed (fault injection)
    up: bool = True

    def __hash__(self) -> int:
        return hash(self.name)


@dataclass
class Link:
    """A directed-capacity, bidirectional network segment."""

    a: str
    b: str
    bandwidth_bps: float
    latency_s: float
    kind: str = "ethernet"
    #: live signal quality in (0, 1]; only meaningful for wireless links
    signal_quality: float = 1.0
    #: MAC-layer efficiency (goodput / nominal); 802.11b ≈ 0.44
    mac_efficiency: float = 1.0
    #: number of transfers currently using this link
    active: int = 0
    up: bool = True

    def effective_bandwidth(self, extra_flows: int = 1) -> float:
        """Per-transfer goodput for a *new* transfer, in bits/second.

        ``extra_flows`` is how many flows the caller is about to add (the
        hypothetical transfer itself by default); ``active`` counts flows
        already in flight.
        """
        if not self.up:
            return 0.0
        share = max(1, self.active + extra_flows)
        return (self.bandwidth_bps * self.mac_efficiency
                * self.signal_quality / share)

    @property
    def key(self) -> tuple[str, str]:
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)


@dataclass(frozen=True)
class TransferRecord:
    """Accounting entry for one completed (or scheduled) transfer."""

    src: str
    dst: str
    nbytes: int
    start: float
    duration: float
    path: tuple[str, ...]
    #: True when fault injection lost this transfer in flight
    dropped: bool = False

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def goodput_bps(self) -> float:
        return self.nbytes * 8.0 / self.duration if self.duration > 0 else 0.0


class WirelessCell:
    """A shared 802.11b cell: every member reaches the access point over the
    same medium, so their links share one contention domain."""

    def __init__(self, network: Network, access_point: str,
                 nominal_bps: float = 11e6, mac_efficiency: float = 0.44,
                 latency_s: float = 0.004) -> None:
        self.network = network
        self.access_point = access_point
        self.nominal_bps = nominal_bps
        self.mac_efficiency = mac_efficiency
        self.latency_s = latency_s
        self.members: list[str] = []

    def join(self, host: str, signal_quality: float = 1.0) -> Link:
        link = self.network.add_link(
            host, self.access_point, self.nominal_bps, self.latency_s,
            kind="wireless", signal_quality=signal_quality,
            mac_efficiency=self.mac_efficiency)
        self.members.append(host)
        return link

    def set_signal_quality(self, host: str, quality: float) -> None:
        """Degrade/restore a member's signal (user walks away from the AP)."""
        if not 0.0 < quality <= 1.0:
            raise ValueError("signal quality must be in (0, 1]")
        self.network.link_between(host, self.access_point).signal_quality = \
            quality


class Network:
    """Hosts + links + routing + transfer scheduling."""

    def __init__(self, simulator: Simulator | None = None) -> None:
        self.sim = simulator if simulator is not None else Simulator()
        self.hosts: dict[str, Host] = {}
        self._links: dict[tuple[str, str], Link] = {}
        self._graph = nx.Graph()
        self.transfers: list[TransferRecord] = []
        #: optional :class:`repro.network.faults.FaultInjector`
        self.fault_injector = None
        # Routing cache: the "usable" graph (and shortest paths over it)
        # are reused until any host/link liveness bit changes.
        self._usable_token: tuple | None = None
        self._usable_graph: nx.Graph | None = None
        self._path_cache: dict[tuple[str, str], list[str]] = {}

    # -- topology ---------------------------------------------------------------

    def add_host(self, name: str, profile: str = "") -> Host:
        if name in self.hosts:
            raise NetworkError(f"host {name!r} already exists")
        host = Host(name=name, profile=profile)
        self.hosts[name] = host
        self._graph.add_node(name)
        return host

    def add_link(self, a: str, b: str, bandwidth_bps: float,
                 latency_s: float, kind: str = "ethernet",
                 signal_quality: float = 1.0,
                 mac_efficiency: float = 1.0) -> Link:
        for h in (a, b):
            if h not in self.hosts:
                raise NetworkError(f"unknown host {h!r}")
        if bandwidth_bps <= 0:
            raise NetworkError("bandwidth must be positive")
        link = Link(a=a, b=b, bandwidth_bps=bandwidth_bps,
                    latency_s=latency_s, kind=kind,
                    signal_quality=signal_quality,
                    mac_efficiency=mac_efficiency)
        if link.key in self._links:
            raise NetworkError(f"link {a!r}-{b!r} already exists")
        self._links[link.key] = link
        self._graph.add_edge(a, b, latency=latency_s)
        return link

    def add_ethernet_segment(self, hosts: list[str], switch: str,
                             bandwidth_bps: float = 100e6,
                             latency_s: float = 0.0002) -> None:
        """Star topology through a named switch (the testbed's 100 Mbit LAN)."""
        if switch not in self.hosts:
            self.add_host(switch)
        for h in hosts:
            self.add_link(h, switch, bandwidth_bps, latency_s)

    def link_between(self, a: str, b: str) -> Link:
        key = (a, b) if a <= b else (b, a)
        try:
            return self._links[key]
        except KeyError:
            raise NetworkError(f"no link between {a!r} and {b!r}") from None

    def set_link_up(self, a: str, b: str, up: bool) -> None:
        self.link_between(a, b).up = up

    def set_host_up(self, name: str, up: bool) -> None:
        """Crash or restart a machine; down hosts route no traffic at all."""
        if name not in self.hosts:
            raise NetworkError(f"unknown host {name!r}")
        self.hosts[name].up = up

    def host_is_up(self, name: str) -> bool:
        if name not in self.hosts:
            raise NetworkError(f"unknown host {name!r}")
        return self.hosts[name].up

    def _liveness_token(self) -> tuple:
        """Cheap fingerprint of everything that affects routing."""
        bits = 0
        for link in self._links.values():
            bits = (bits << 1) | link.up
        for host in self.hosts.values():
            bits = (bits << 1) | host.up
        return (len(self.hosts), len(self._links), bits)

    def _usable(self) -> nx.Graph:
        """The routing graph restricted to live hosts and links (cached)."""
        token = self._liveness_token()
        if token != self._usable_token or self._usable_graph is None:
            usable = nx.Graph(
                (a, b, d) for a, b, d in self._graph.edges(data=True)
                if self._links[(a, b) if a <= b else (b, a)].up
                and self.hosts[a].up and self.hosts[b].up
            )
            usable.add_nodes_from(
                h.name for h in self.hosts.values() if h.up)
            self._usable_graph = usable
            self._usable_token = token
            self._path_cache.clear()
        return self._usable_graph

    def path(self, src: str, dst: str) -> list[str]:
        for h in (src, dst):
            if h not in self.hosts:
                raise NetworkError(f"unknown host {h!r}")
        usable = self._usable()   # refreshes the path cache if stale
        cached = self._path_cache.get((src, dst))
        if cached is not None:
            return cached
        try:
            # Route around downed links and crashed hosts.
            route = nx.shortest_path(usable, src, dst, weight="latency")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            raise NetworkError(f"no route from {src!r} to {dst!r}") from None
        self._path_cache[(src, dst)] = route
        return route

    def path_links(self, src: str, dst: str) -> list[Link]:
        nodes = self.path(src, dst)
        return [self.link_between(a, b) for a, b in zip(nodes[:-1], nodes[1:])]

    # -- analytic transfer times ---------------------------------------------------

    def _link_latency(self, link: Link) -> float:
        """Base latency plus any fault-injected spike on this link."""
        extra = 0.0
        if self.fault_injector is not None:
            extra = self.fault_injector.latency_penalty(link)
        return link.latency_s + extra

    def transfer_time(self, src: str, dst: str, nbytes: int) -> float:
        """Store-and-forward time using *current* contention and signal."""
        if src == dst:
            return 0.0
        if nbytes < 0:
            raise NetworkError("nbytes must be non-negative")
        total = 0.0
        for link in self.path_links(src, dst):
            bw = link.effective_bandwidth()
            if bw <= 0:
                raise NetworkError(
                    f"link {link.a!r}-{link.b!r} is down")
            total += self._link_latency(link) + nbytes * 8.0 / bw
        return total

    def round_trip_time(self, src: str, dst: str,
                        request_bytes: int = 512,
                        response_bytes: int = 512) -> float:
        return (self.transfer_time(src, dst, request_bytes)
                + self.transfer_time(dst, src, response_bytes))

    # -- scheduled transfers (contention-aware) --------------------------------------

    def send(self, src: str, dst: str, nbytes: int,
             on_complete=None, on_drop=None) -> TransferRecord:
        """Schedule a transfer in the simulator; links stay busy for its span.

        Effective bandwidth is sampled at start (fluid re-negotiation is not
        modelled); concurrent transfers therefore slow each other only if
        already in flight when a new one begins.  When a fault injector is
        attached, the transfer may be lost in flight: the links stay busy
        for its full span but ``on_drop`` (not ``on_complete``) fires.
        """
        links = self.path_links(src, dst) if src != dst else []
        # Rate is sampled before this transfer joins the links (the
        # transfer itself counts via effective_bandwidth's extra flow).
        duration = self.transfer_time(src, dst, nbytes) if links else 0.0
        for link in links:
            link.active += 1
        dropped = (self.fault_injector is not None and links
                   and self.fault_injector.roll_loss(src, dst))
        record = TransferRecord(src=src, dst=dst, nbytes=nbytes,
                                start=self.sim.now, duration=duration,
                                path=tuple(self.path(src, dst)),
                                dropped=bool(dropped))
        self.transfers.append(record)
        obs = _obs()
        if obs.enabled:
            m = obs.metrics
            m.counter("rave_net_transfers_total",
                      "scheduled transfers started").inc()
            m.counter("rave_net_bytes_total",
                      "payload bytes put on the wire").inc(nbytes)
            m.histogram("rave_net_transfer_seconds",
                        "end-to-end transfer time").observe(duration)
            if dropped:
                m.counter("rave_net_dropped_total",
                          "transfers lost in flight").inc()
            for link in links:
                name = f"{link.key[0]}-{link.key[1]}"
                m.counter("rave_net_link_bytes_total",
                          "bytes carried per link", link=name).inc(nbytes)
                m.counter("rave_net_link_busy_seconds_total",
                          "per-link busy time (utilisation numerator)",
                          link=name).inc(duration)

        def finish() -> None:
            for link in links:
                link.active -= 1
            if record.dropped:
                if on_drop is not None:
                    on_drop(record)
            elif on_complete is not None:
                on_complete(record)

        self.sim.schedule(duration, finish)
        return record

    def multicast_times(self, src: str, dsts: list[str],
                        nbytes: int) -> dict[str, float]:
        """Per-destination completion time for one multicast payload.

        Links shared by several receivers carry the payload once: each
        link's serialisation cost is charged once per multicast, then each
        receiver accumulates the latency+serialisation of the links on its
        own path, with shared prefixes not double-charged.
        """
        charged: set[tuple[str, str]] = set()
        times: dict[str, float] = {}
        for dst in dsts:
            if dst == src:
                times[dst] = 0.0
                continue
            t = 0.0
            for link in self.path_links(src, dst):
                if link.key in charged:
                    # payload already on this segment
                    t += self._link_latency(link)
                else:
                    bw = link.effective_bandwidth()
                    if bw <= 0:
                        raise NetworkError(
                            f"link {link.a!r}-{link.b!r} is down")
                    t += self._link_latency(link) + nbytes * 8.0 / bw
                    charged.add(link.key)
            times[dst] = t
        return times

    # -- accounting -------------------------------------------------------------------

    def bytes_moved(self) -> int:
        return sum(t.nbytes for t in self.transfers)

    def __repr__(self) -> str:
        return (f"Network(hosts={len(self.hosts)}, links={len(self._links)}, "
                f"transfers={len(self.transfers)})")
